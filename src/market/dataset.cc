#include "market/dataset.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace ppn::market {

OhlcPanel::OhlcPanel(int64_t num_periods, int64_t num_assets)
    : num_periods_(num_periods),
      num_assets_(num_assets),
      prices_(static_cast<size_t>(num_periods * num_assets * kNumPriceFields),
              std::numeric_limits<double>::quiet_NaN()) {
  PPN_CHECK_GE(num_periods, 0);
  PPN_CHECK_GE(num_assets, 0);
}

int64_t OhlcPanel::Index(int64_t period, int64_t asset, int field) const {
  PPN_DCHECK(period >= 0 && period < num_periods_);
  PPN_DCHECK(asset >= 0 && asset < num_assets_);
  PPN_DCHECK(field >= 0 && field < kNumPriceFields);
  return (period * num_assets_ + asset) * kNumPriceFields + field;
}

double OhlcPanel::Price(int64_t period, int64_t asset,
                        PriceField field) const {
  return prices_[Index(period, asset, field)];
}

void OhlcPanel::SetPrice(int64_t period, int64_t asset, PriceField field,
                         double value) {
  prices_[Index(period, asset, field)] = value;
}

bool OhlcPanel::Tradeable(int64_t period, int64_t asset) const {
  if (tradeable_.empty()) return true;
  return tradeable_[static_cast<size_t>(period * num_assets_ + asset)] != 0;
}

void OhlcPanel::SetTradeable(int64_t period, int64_t asset, bool tradeable) {
  PPN_CHECK(period >= 0 && period < num_periods_);
  PPN_CHECK(asset >= 0 && asset < num_assets_);
  if (tradeable_.empty()) {
    tradeable_.assign(static_cast<size_t>(num_periods_ * num_assets_), 1);
  }
  tradeable_[static_cast<size_t>(period * num_assets_ + asset)] =
      tradeable ? 1 : 0;
}

bool OhlcPanel::IsMissing(int64_t period, int64_t asset) const {
  for (int f = 0; f < kNumPriceFields; ++f) {
    if (std::isnan(prices_[Index(period, asset, f)])) return true;
  }
  return false;
}

bool OhlcPanel::IsComplete() const {
  for (const double p : prices_) {
    if (std::isnan(p)) return false;
  }
  return true;
}

bool OhlcPanel::IsValid() const {
  for (int64_t t = 0; t < num_periods_; ++t) {
    for (int64_t a = 0; a < num_assets_; ++a) {
      if (IsMissing(t, a)) continue;
      if (!Tradeable(t, a)) continue;
      const double open = Price(t, a, kOpen);
      const double high = Price(t, a, kHigh);
      const double low = Price(t, a, kLow);
      const double close = Price(t, a, kClose);
      if (!(low > 0.0)) return false;
      if (low > open || low > close) return false;
      if (high < open || high < close) return false;
    }
  }
  return true;
}

void FlatFillMissing(OhlcPanel* panel) {
  PPN_CHECK(panel != nullptr);
  for (int64_t a = 0; a < panel->num_assets(); ++a) {
    // Find the first observed bar.
    int64_t first_observed = -1;
    for (int64_t t = 0; t < panel->num_periods(); ++t) {
      if (!panel->IsMissing(t, a)) {
        first_observed = t;
        break;
      }
    }
    PPN_CHECK_GE(first_observed, 0)
        << "asset " << a << " has no observed data";
    // Backward flat fill: constant at the first observed close (a flat fake
    // price movement has open=high=low=close).
    const double fill_price = panel->Price(first_observed, a, kClose);
    for (int64_t t = 0; t < first_observed; ++t) {
      for (int f = 0; f < kNumPriceFields; ++f) {
        panel->SetPrice(t, a, static_cast<PriceField>(f), fill_price);
      }
    }
    // Forward flat fill of interior gaps at the last seen close.
    double last_close = fill_price;
    for (int64_t t = first_observed; t < panel->num_periods(); ++t) {
      if (panel->IsMissing(t, a)) {
        for (int f = 0; f < kNumPriceFields; ++f) {
          panel->SetPrice(t, a, static_cast<PriceField>(f), last_close);
        }
      } else {
        last_close = panel->Price(t, a, kClose);
      }
    }
  }
}

std::vector<double> PriceRelatives(const OhlcPanel& panel, int64_t period) {
  PPN_CHECK(period >= 1 && period < panel.num_periods());
  std::vector<double> relatives(panel.num_assets());
  for (int64_t a = 0; a < panel.num_assets(); ++a) {
    // Halted/delisted assets have frozen value: relative 1 by definition,
    // whatever the (possibly degenerate) quotes say.
    if (!panel.Tradeable(period, a) || !panel.Tradeable(period - 1, a)) {
      relatives[a] = 1.0;
      continue;
    }
    const double previous = panel.Close(period - 1, a);
    const double current = panel.Close(period, a);
    PPN_CHECK_GT(previous, 0.0)
        << "degenerate close " << previous << " for tradeable asset " << a
        << " at period " << period - 1
        << "; mark the asset non-tradeable (tradeability mask) or fix the "
           "panel";
    PPN_CHECK_GT(current, 0.0)
        << "degenerate close " << current << " for tradeable asset " << a
        << " at period " << period
        << "; mark the asset non-tradeable (tradeability mask) or fix the "
           "panel";
    relatives[a] = current / previous;
  }
  return relatives;
}

std::vector<double> PriceRelativesWithCash(const OhlcPanel& panel,
                                           int64_t period) {
  std::vector<double> risk = PriceRelatives(panel, period);
  std::vector<double> with_cash;
  with_cash.reserve(risk.size() + 1);
  with_cash.push_back(1.0);  // Cash: invariant price.
  with_cash.insert(with_cash.end(), risk.begin(), risk.end());
  return with_cash;
}

Tensor NormalizedWindow(const OhlcPanel& panel, int64_t t, int64_t k) {
  PPN_CHECK_GE(t, k - 1);
  PPN_CHECK_LT(t, panel.num_periods());
  PPN_CHECK_GT(k, 0);
  const int64_t m = panel.num_assets();
  Tensor window({m, k, kNumPriceFields});
  float* out = window.MutableData();
  for (int64_t a = 0; a < m; ++a) {
    // A halted/delisted asset contributes the neutral input a frozen flat
    // price path would: all ones.
    if (!panel.Tradeable(t, a)) {
      for (int f = 0; f < kNumPriceFields; ++f) {
        for (int64_t j = 0; j < k; ++j) {
          out[(a * k + j) * kNumPriceFields + f] = 1.0f;
        }
      }
      continue;
    }
    for (int f = 0; f < kNumPriceFields; ++f) {
      const double denominator = panel.Price(t, a, static_cast<PriceField>(f));
      PPN_CHECK_GT(denominator, 0.0)
          << "degenerate price " << denominator << " (field " << f
          << ") for tradeable asset " << a << " at period " << t
          << "; mark the asset non-tradeable (tradeability mask) or fix the "
             "panel";
      for (int64_t j = 0; j < k; ++j) {
        const int64_t period = t - k + 1 + j;
        const double price = panel.Price(period, a, static_cast<PriceField>(f));
        out[(a * k + j) * kNumPriceFields + f] =
            static_cast<float>(price / denominator);
      }
    }
  }
  return window;
}

DatasetStats ComputeStats(const MarketDataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name;
  stats.num_assets = dataset.panel.num_assets();
  stats.train_periods = dataset.train_end;
  stats.test_periods = dataset.panel.num_periods() - dataset.train_end;
  return stats;
}

}  // namespace ppn::market
