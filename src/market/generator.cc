#include "market/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace ppn::market {

SyntheticMarketGenerator::SyntheticMarketGenerator(SyntheticMarketConfig config)
    : config_(std::move(config)) {
  PPN_CHECK_GT(config_.num_assets, 0);
  PPN_CHECK_GT(config_.num_periods, 2);
  PPN_CHECK(!config_.regime_drifts.empty());
  PPN_CHECK_GE(config_.lead_lag_max_delay, 1);
  PPN_CHECK_GT(config_.reversion_window, 0);
}

OhlcPanel SyntheticMarketGenerator::Generate(
    MarketGroundTruth* ground_truth) const {
  const int64_t m = config_.num_assets;
  const int64_t n = config_.num_periods;
  Rng rng(config_.seed);

  // --- Draw the hidden structure. -----------------------------------
  MarketGroundTruth truth;
  truth.factor_betas.resize(m);
  truth.leader.assign(m, -1);
  truth.lag.assign(m, 0);
  truth.listing_period.assign(m, 0);
  for (int64_t a = 0; a < m; ++a) {
    truth.factor_betas[a] = rng.Uniform(config_.beta_min, config_.beta_max);
  }
  // Followers echo an earlier-indexed asset, so chains are acyclic.
  for (int64_t a = 1; a < m; ++a) {
    if (rng.Bernoulli(config_.follower_fraction)) {
      truth.leader[a] = rng.UniformInt(a);
      truth.lag[a] = 1 + rng.UniformInt(config_.lead_lag_max_delay);
    }
  }
  for (int64_t a = 0; a < m; ++a) {
    if (a > 0 && rng.Bernoulli(config_.late_listing_fraction)) {
      const int64_t horizon = std::max<int64_t>(
          1, static_cast<int64_t>(config_.late_listing_max_fraction * n));
      truth.listing_period[a] = rng.UniformInt(horizon);
    }
  }

  // --- Simulate close log-prices. ------------------------------------
  // returns[t][a] is the log-return from t-1 to t (t >= 1).
  std::vector<std::vector<double>> returns(n, std::vector<double>(m, 0.0));
  std::vector<std::vector<double>> log_price(n, std::vector<double>(m, 0.0));
  for (int64_t a = 0; a < m; ++a) {
    log_price[0][a] = std::log(rng.Uniform(0.5, 5.0));
  }
  int regime = static_cast<int>(rng.UniformInt(
      static_cast<int64_t>(config_.regime_drifts.size())));
  std::vector<double> running_sum(m, 0.0);  // For the slow moving average.
  for (int64_t a = 0; a < m; ++a) running_sum[a] = log_price[0][a];

  for (int64_t t = 1; t < n; ++t) {
    if (rng.Bernoulli(config_.regime_switch_prob)) {
      regime = static_cast<int>(rng.UniformInt(
          static_cast<int64_t>(config_.regime_drifts.size())));
    }
    const double factor = rng.Normal(0.0, config_.factor_vol);
    const double drift = config_.regime_drifts[regime];
    for (int64_t a = 0; a < m; ++a) {
      double r = drift * truth.factor_betas[a] +
                 factor * truth.factor_betas[a] +
                 rng.Normal(0.0, config_.idio_vol);
      // Sequential signal: own-return momentum.
      r += config_.momentum * returns[t - 1][a];
      // Slow mean reversion to the moving average of log price. The
      // rolling sum holds log prices [max(0, t - W) .. t-1], i.e. exactly
      // min(t, W) terms — divide by that count, not one more.
      const int64_t window =
          std::min<int64_t>(t, config_.reversion_window);
      const double moving_average =
          running_sum[a] / static_cast<double>(window);
      r += config_.mean_reversion * (moving_average - log_price[t - 1][a]);
      // Cross-asset signal: echo the leader's lagged return.
      const int64_t leader = truth.leader[a];
      if (leader >= 0) {
        const int64_t lagged_t = t - truth.lag[a];
        if (lagged_t >= 1) {
          r += config_.lead_lag_strength * returns[lagged_t][leader];
        }
      }
      // Occasional jump.
      if (rng.Bernoulli(config_.jump_prob)) {
        r += rng.Normal(0.0, config_.jump_scale);
      }
      returns[t][a] = r;
      log_price[t][a] = log_price[t - 1][a] + r;
      // Maintain a rolling sum over the last `reversion_window` periods.
      running_sum[a] += log_price[t][a];
      if (t >= config_.reversion_window) {
        running_sum[a] -= log_price[t - config_.reversion_window][a];
      }
    }
  }

  // --- Build OHLC bars around the close path. -------------------------
  OhlcPanel panel(n, m);
  for (int64_t a = 0; a < m; ++a) {
    for (int64_t t = truth.listing_period[a]; t < n; ++t) {
      const double close = std::exp(log_price[t][a]);
      const double previous_close =
          t > truth.listing_period[a] ? std::exp(log_price[t - 1][a]) : close;
      const double open =
          previous_close * std::exp(rng.Normal(0.0, config_.intrabar_noise));
      const double body_high = std::max(open, close);
      const double body_low = std::min(open, close);
      const double high =
          body_high * std::exp(std::fabs(rng.Normal(0.0, config_.intrabar_noise)));
      const double low =
          body_low * std::exp(-std::fabs(rng.Normal(0.0, config_.intrabar_noise)));
      panel.SetPrice(t, a, kOpen, open);
      panel.SetPrice(t, a, kHigh, high);
      panel.SetPrice(t, a, kLow, low);
      panel.SetPrice(t, a, kClose, close);
    }
  }
  FlatFillMissing(&panel);
  PPN_CHECK(panel.IsComplete());
  PPN_CHECK(panel.IsValid());

  if (ground_truth != nullptr) *ground_truth = std::move(truth);
  return panel;
}

MarketDataset SyntheticMarketGenerator::GenerateDataset(
    const std::string& name, double train_fraction) const {
  PPN_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  MarketDataset dataset;
  dataset.name = name;
  dataset.panel = Generate();
  dataset.train_end =
      static_cast<int64_t>(train_fraction * config_.num_periods);
  // Small num_periods can truncate the split into a degenerate range: a
  // train_end of 0 leaves nothing to train on, and windowed policies
  // (lookback k, PVM) additionally need train_end >= k before the first
  // decision — catch the empty split here with actionable context instead
  // of an opaque downstream abort.
  PPN_CHECK_GE(dataset.train_end, 1)
      << "degenerate split: train_fraction " << train_fraction << " of "
      << config_.num_periods
      << " periods truncates to an empty training range; use more periods "
         "or a larger fraction";
  PPN_CHECK_GE(config_.num_periods - dataset.train_end, 1)
      << "degenerate split: train_fraction " << train_fraction << " of "
      << config_.num_periods
      << " periods leaves no test range to backtest on";
  dataset.asset_names.reserve(config_.num_assets);
  for (int64_t a = 0; a < config_.num_assets; ++a) {
    dataset.asset_names.push_back("ASSET" + std::to_string(a));
  }
  return dataset;
}

}  // namespace ppn::market
