#ifndef PPN_MARKET_PRESETS_H_
#define PPN_MARKET_PRESETS_H_

#include <string>
#include <vector>

#include "common/run_scale.h"
#include "market/generator.h"

/// \file
/// Dataset presets mirroring the paper's Table 1 (Crypto-A/B/C/D, Poloniex
/// 30-minute bars) and Table 10 (S&P500, daily bars). Asset counts match the
/// paper; period counts and market character are scaled by `RunScale`
/// (quick/smoke shrink the series, `full` approximates the paper's sizes).
/// Each preset gets its own seed and regime mix so the four crypto markets
/// have distinct personalities, echoing the paper (B strongly bullish, D
/// bearish with UBAH < 1, C sideways).

namespace ppn::market {

/// Identifiers of the paper's datasets.
enum class DatasetId { kCryptoA, kCryptoB, kCryptoC, kCryptoD, kSp500 };

/// All crypto presets (Table 1 order).
std::vector<DatasetId> CryptoDatasets();

/// Printable name ("Crypto-A", ..., "S&P500").
std::string DatasetName(DatasetId id);

/// Generator configuration for a preset at the given scale.
SyntheticMarketConfig PresetConfig(DatasetId id, RunScale scale);

/// Generates the preset dataset (panel + split) at the given scale.
MarketDataset MakeDataset(DatasetId id, RunScale scale);

}  // namespace ppn::market

#endif  // PPN_MARKET_PRESETS_H_
