#include "market/presets.h"

#include "common/check.h"

namespace ppn::market {

std::vector<DatasetId> CryptoDatasets() {
  return {DatasetId::kCryptoA, DatasetId::kCryptoB, DatasetId::kCryptoC,
          DatasetId::kCryptoD};
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kCryptoA:
      return "Crypto-A";
    case DatasetId::kCryptoB:
      return "Crypto-B";
    case DatasetId::kCryptoC:
      return "Crypto-C";
    case DatasetId::kCryptoD:
      return "Crypto-D";
    case DatasetId::kSp500:
      return "S&P500";
  }
  return "Unknown";
}

namespace {

// Total periods per scale for the crypto presets. The paper has ~32k train
// + ~2.8k test 30-minute bars; `quick` keeps the same train:test ratio at
// laptop size.
int64_t CryptoPeriods(RunScale scale) {
  switch (scale) {
    case RunScale::kSmoke:
      return 700;
    case RunScale::kQuick:
      return 4400;
    case RunScale::kFull:
      return 35000;
  }
  return 2640;
}

// The crypto train fraction matches the paper's ~92/8 split.
constexpr double kCryptoTrainFraction = 0.92;

}  // namespace

SyntheticMarketConfig PresetConfig(DatasetId id, RunScale scale) {
  SyntheticMarketConfig config;
  switch (id) {
    case DatasetId::kCryptoA:
      config.num_assets = 12;
      config.num_periods = CryptoPeriods(scale);
      config.seed = 101;
      config.regime_drifts = {1.1e-3, -4e-4, 1e-4};
      break;
    case DatasetId::kCryptoB:
      // Strongly bullish market (the paper's Crypto-B produces huge APVs).
      config.num_assets = 16;
      config.num_periods = CryptoPeriods(scale);
      config.seed = 202;
      config.regime_drifts = {1.6e-3, -4e-4, 2e-4};
      config.lead_lag_strength = 0.5;
      break;
    case DatasetId::kCryptoC:
      // Sideways, noisy market (paper: smallest APVs of the four).
      config.num_assets = 21;
      config.num_periods = CryptoPeriods(scale);
      config.seed = 303;
      config.regime_drifts = {4e-4, -4e-4, 0.0};
      config.momentum = 0.18;
      config.lead_lag_strength = 0.5;
      break;
    case DatasetId::kCryptoD:
      // Bearish market (paper: UBAH ends below 1) but with strong
      // cross-asset structure so learned policies still profit.
      config.num_assets = 44;
      config.num_periods = CryptoPeriods(scale);
      config.seed = 404;
      config.regime_drifts = {6e-4, -1.1e-3, -1e-4};
      config.lead_lag_strength = 0.65;
      config.follower_fraction = 0.6;
      break;
    case DatasetId::kSp500:
      // Daily stock bars: lower volatility, milder structure, small test
      // set (Table 10: 1101 train / 94 test periods).
      config.num_assets = scale == RunScale::kFull ? 506 : 24;
      config.num_periods = 1195;
      config.seed = 505;
      config.idio_vol = 0.008;
      config.factor_vol = 0.005;
      config.regime_drifts = {9e-4, -3e-4, 2e-4};
      config.momentum = 0.28;
      config.lead_lag_strength = 0.55;
      config.jump_prob = 0.002;
      config.late_listing_fraction = 0.0;
      break;
  }
  return config;
}

MarketDataset MakeDataset(DatasetId id, RunScale scale) {
  const SyntheticMarketConfig config = PresetConfig(id, scale);
  SyntheticMarketGenerator generator(config);
  if (id == DatasetId::kSp500) {
    // Match the paper's 1101/94 split exactly.
    MarketDataset dataset = generator.GenerateDataset(DatasetName(id), 0.5);
    dataset.train_end = 1101;
    PPN_CHECK_LT(dataset.train_end, dataset.panel.num_periods());
    return dataset;
  }
  return generator.GenerateDataset(DatasetName(id), kCryptoTrainFraction);
}

}  // namespace ppn::market
