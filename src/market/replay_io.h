#ifndef PPN_MARKET_REPLAY_IO_H_
#define PPN_MARKET_REPLAY_IO_H_

#include <cstdint>
#include <string>

#include "market/dataset.h"

/// \file
/// CSV replay: load an EXTERNAL OHLC dataset (exported from a vendor feed,
/// another backtester, or a paper's data release) into a `MarketDataset`,
/// so the scenario engine and `ppn_cli stress` evaluate strategies on real
/// markets, not only on the synthetic generator.
///
/// Unlike `market/io.h` (which round-trips our own files and may abort on
/// malformed input), external data is untrusted: every failure mode —
/// missing columns, out-of-range indices, duplicate bars, insane OHLC —
/// is reported through a returned error string naming the offending row
/// or bar, never a PPN_CHECK abort.

namespace ppn::market {

/// Knobs for `LoadReplayCsv`.
struct ReplayCsvOptions {
  /// Dataset name; defaults to the file path when empty.
  std::string name;
  /// Train/test boundary as a fraction of the loaded periods (the paper's
  /// splits are ~0.92). Ignored when `train_end` >= 0.
  double train_fraction = 0.92;
  /// Explicit train/test boundary in periods; -1 = use `train_fraction`.
  int64_t train_end = -1;
  /// Flat-fill bars absent from the file (pre-listing history and interior
  /// gaps) per `FlatFillMissing`. When false, any missing bar is an error.
  bool fill_missing = true;
};

/// Loads a long-format OHLC CSV into `*dataset`.
///
/// Expected columns (matched by header name, any order, extra columns
/// ignored): `period`, `asset`, `open`, `high`, `low`, `close`. Periods
/// and assets are dense 0-based indices; panel shape is inferred from the
/// maxima. Bars absent from the file are flat-filled (see
/// `ReplayCsvOptions::fill_missing`), and the result must pass
/// `OhlcPanel::IsValid`.
///
/// Returns true on success. On failure returns false, leaves `*dataset`
/// untouched, and (when `error` is non-null) stores a one-line diagnosis
/// naming the offending row/bar.
bool LoadReplayCsv(const std::string& path, const ReplayCsvOptions& options,
                   MarketDataset* dataset, std::string* error = nullptr);

}  // namespace ppn::market

#endif  // PPN_MARKET_REPLAY_IO_H_
