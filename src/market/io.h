#ifndef PPN_MARKET_IO_H_
#define PPN_MARKET_IO_H_

#include <string>

#include "market/dataset.h"

/// \file
/// Dataset persistence: save a generated market to CSV so an experiment's
/// exact price series can be archived, inspected, or replayed, and load it
/// back. Two files are written for a prefix P: `P.prices.csv` (long
/// format: period, asset, open, high, low, close) and `P.meta.csv`
/// (num_periods, num_assets, train_end).

namespace ppn::market {

/// Writes `dataset` under `path_prefix`. The panel must be complete (no
/// NaNs). Returns false on IO failure.
bool SaveDataset(const MarketDataset& dataset, const std::string& path_prefix);

/// Loads a dataset written by `SaveDataset`. Returns false on IO/format
/// failure; `*dataset` is left untouched on failure. Asset names are
/// regenerated as ASSET<i> (names are not persisted).
bool LoadDataset(const std::string& path_prefix, MarketDataset* dataset);

}  // namespace ppn::market

#endif  // PPN_MARKET_IO_H_
