#ifndef PPN_MARKET_DATASET_H_
#define PPN_MARKET_DATASET_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

/// \file
/// Market data containers and the preprocessing pipeline from Section 6.1.3
/// of the paper: OHLC panels, price-relative vectors, flat-fill of missing
/// early history, and last-period normalization of price windows.

namespace ppn::market {

/// Price-type indices within a bar.
enum PriceField : int { kOpen = 0, kHigh = 1, kLow = 2, kClose = 3 };

/// Number of price fields per bar (d = 4 in the paper).
inline constexpr int kNumPriceFields = 4;

/// A panel of OHLC bars for `num_assets` risk assets over `num_periods`
/// trading periods (the cash asset is implicit and has constant price 1).
/// Missing values (pre-listing history) are encoded as NaN until
/// `FlatFillMissing` is applied.
///
/// Tradeability: each (period, asset) bar additionally carries a
/// tradeability flag (default: everything tradeable, stored as an empty
/// mask). Stress scenarios mark assets non-tradeable to model halts and
/// mid-episode delistings; the preprocessing functions below treat a
/// non-tradeable bar as HALTED — frozen value, price relative 1, neutral
/// network input — instead of aborting, and the backtester force-
/// liquidates positions in assets that stop trading.
class OhlcPanel {
 public:
  OhlcPanel() = default;

  /// Allocates a panel filled with NaN (and fully tradeable).
  OhlcPanel(int64_t num_periods, int64_t num_assets);

  int64_t num_periods() const { return num_periods_; }
  int64_t num_assets() const { return num_assets_; }

  /// Price of `field` for `asset` at `period`.
  double Price(int64_t period, int64_t asset, PriceField field) const;

  /// Sets one price.
  void SetPrice(int64_t period, int64_t asset, PriceField field, double value);

  /// Convenience close-price accessor.
  double Close(int64_t period, int64_t asset) const {
    return Price(period, asset, kClose);
  }

  /// True if `asset` can be traded at `period`. Always true until
  /// `SetTradeable` has marked something non-tradeable.
  bool Tradeable(int64_t period, int64_t asset) const;

  /// Marks one (period, asset) bar tradeable or halted/delisted. The mask
  /// is allocated (all-true) on the first call.
  void SetTradeable(int64_t period, int64_t asset, bool tradeable);

  /// True once any bar has been marked non-tradeable via `SetTradeable`.
  bool HasTradeabilityMask() const { return !tradeable_.empty(); }

  /// True if any field of the bar is NaN.
  bool IsMissing(int64_t period, int64_t asset) const;

  /// True if no bar in the panel is NaN.
  bool IsComplete() const;

  /// Verifies OHLC sanity on non-missing bars: low <= open, close <= high
  /// and all prices positive. Returns false on the first violation.
  /// Non-tradeable bars are exempt — a halted or delisted asset's quotes
  /// are decorative (its value is frozen and it cannot be traded), so a
  /// stress pack that drives a masked price to zero stays valid.
  bool IsValid() const;

 private:
  int64_t Index(int64_t period, int64_t asset, int field) const;

  int64_t num_periods_ = 0;
  int64_t num_assets_ = 0;
  std::vector<double> prices_;
  /// Empty = all tradeable; otherwise one flag per (period, asset).
  std::vector<uint8_t> tradeable_;
};

/// A named dataset: an OHLC panel plus the train/test split boundary,
/// mirroring the paper's Table 1 / Table 10 entries.
struct MarketDataset {
  std::string name;
  OhlcPanel panel;
  std::vector<std::string> asset_names;
  /// Periods [0, train_end) are training data, [train_end, num_periods)
  /// are test data.
  int64_t train_end = 0;
};

/// Replaces each asset's missing early history with its first observed bar
/// repeated backwards ("flat fake price-movements", Jiang et al. 2017) and
/// interpolates any interior gaps flat-forward. Checks that every asset has
/// at least one observed bar.
void FlatFillMissing(OhlcPanel* panel);

/// Price-relative vector of the *risk assets* for period t:
/// x_t[i] = close_t[i] / close_{t-1}[i]. Requires 1 <= t < num_periods and a
/// complete panel. An asset that is non-tradeable at `period` or
/// `period - 1` is halted: its relative is 1 (frozen value) regardless of
/// the quoted prices. A non-positive close on a TRADEABLE asset aborts
/// with the offending (period, asset, price) named — mask the asset or fix
/// the data.
std::vector<double> PriceRelatives(const OhlcPanel& panel, int64_t period);

/// Price-relative including the cash asset at index 0 (always 1), matching
/// the portfolio vector layout a_t in the paper.
std::vector<double> PriceRelativesWithCash(const OhlcPanel& panel,
                                           int64_t period);

/// Builds the normalized network input for a decision at period `t`: the
/// window of the `k` most recent bars (periods t-k+1 .. t), each price
/// divided elementwise by the corresponding price of the window's last
/// period, returned with shape [num_assets, k, 4]. Requires t >= k-1.
/// An asset non-tradeable at `t` contributes a neutral all-ones row (the
/// same input a frozen flat price path would produce); a non-positive
/// normalization price on a tradeable asset aborts with the offending
/// (period, asset, field, price) named.
Tensor NormalizedWindow(const OhlcPanel& panel, int64_t t, int64_t k);

/// Summary row used by the Table-1 bench: asset count plus train/test sizes.
struct DatasetStats {
  std::string name;
  int64_t num_assets = 0;
  int64_t train_periods = 0;
  int64_t test_periods = 0;
};

/// Computes summary statistics of a dataset.
DatasetStats ComputeStats(const MarketDataset& dataset);

}  // namespace ppn::market

#endif  // PPN_MARKET_DATASET_H_
