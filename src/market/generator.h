#ifndef PPN_MARKET_GENERATOR_H_
#define PPN_MARKET_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "market/dataset.h"

/// \file
/// Synthetic market generator — the substitution for the paper's Poloniex
/// crypto feeds and Kaggle S&P500 data (see DESIGN.md §1). The generator
/// plants exactly the structure the paper's claims rest on:
///
///  * *sequential* structure: per-asset momentum plus slow mean reversion
///    and regime-switching drift (what the LSTM / dilated causal convs can
///    extract from a single asset's window);
///  * *cross-asset* structure: a common market factor and explicit
///    lead–lag chains where follower assets echo a leader's return a few
///    periods later (extractable only by models that mix features across
///    assets — the correlational convolution);
///  * realism details: fat-ish tails via jump shocks, OHLC bars consistent
///    with the close path, and late-listed assets with missing history.

namespace ppn::market {

/// Parameters of the synthetic market dynamics. Defaults give a 30-minute
/// crypto-like regime: ~1% per-period volatility, strong factor structure.
struct SyntheticMarketConfig {
  int64_t num_assets = 12;
  int64_t num_periods = 3000;
  uint64_t seed = 7;

  /// Idiosyncratic per-period log-return volatility.
  double idio_vol = 0.007;
  /// Volatility of the common market factor.
  double factor_vol = 0.006;
  /// Range of each asset's loading on the market factor.
  double beta_min = 0.7;
  double beta_max = 1.2;

  /// Per-period drift of each regime (bull, bear, sideways).
  std::vector<double> regime_drifts = {8e-4, -8e-4, 0.0};
  /// Probability of switching to a fresh uniformly chosen regime.
  double regime_switch_prob = 0.02;

  /// AR(1) coefficient of each asset's own return (sequential signal).
  double momentum = 0.3;
  /// Strength of reversion of the log price to its slow moving average.
  double mean_reversion = 0.03;
  /// Length of the slow moving average used for reversion.
  int64_t reversion_window = 20;

  /// Fraction of assets acting as followers in lead–lag chains.
  double follower_fraction = 0.7;
  /// Coefficient with which a follower echoes its leader's lagged return
  /// (cross-asset signal; set 0 to remove all lead–lag structure).
  double lead_lag_strength = 0.75;
  /// Maximum lag of the echo (each follower draws a lag in [1, max]).
  int64_t lead_lag_max_delay = 3;

  /// Per-period probability of a jump shock, and its scale.
  double jump_prob = 0.003;
  double jump_scale = 0.04;

  /// Fraction of assets that list late (missing early history, flat-filled
  /// as in the paper).
  double late_listing_fraction = 0.2;
  /// A late-listed asset appears somewhere in the first this-fraction of
  /// the sample.
  double late_listing_max_fraction = 0.3;

  /// Intrabar noise controlling how far high/low stray from open/close.
  double intrabar_noise = 0.004;
};

/// Hidden ground truth of a generated market (exposed for tests and for the
/// representation-ability analyses).
struct MarketGroundTruth {
  std::vector<double> factor_betas;
  /// leader[i] == -1 for leaders / independent assets; otherwise the index
  /// of the asset that i echoes.
  std::vector<int64_t> leader;
  std::vector<int64_t> lag;
  std::vector<int64_t> listing_period;
};

/// Generates an OHLC panel (complete: missing history already flat-filled)
/// plus the hidden structure. Deterministic in `config.seed`.
class SyntheticMarketGenerator {
 public:
  explicit SyntheticMarketGenerator(SyntheticMarketConfig config);

  /// Runs the simulation and returns the panel; `ground_truth` (optional)
  /// receives the hidden structure.
  OhlcPanel Generate(MarketGroundTruth* ground_truth = nullptr) const;

  /// Convenience wrapper producing a named, split dataset. `train_fraction`
  /// of periods go to training.
  MarketDataset GenerateDataset(const std::string& name,
                                double train_fraction) const;

  const SyntheticMarketConfig& config() const { return config_; }

 private:
  SyntheticMarketConfig config_;
};

}  // namespace ppn::market

#endif  // PPN_MARKET_GENERATOR_H_
