#include "analysis/theory.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace ppn::analysis {

double Theorem1Gap(double lambda) {
  PPN_CHECK_GE(lambda, 0.0);
  return 2.25 * lambda;
}

double Theorem2Gap(double lambda, double gamma, double psi) {
  PPN_CHECK_GE(lambda, 0.0);
  PPN_CHECK_GE(gamma, 0.0);
  PPN_CHECK(psi >= 0.0 && psi <= 1.0);
  return 2.25 * lambda + 2.0 * gamma * (1.0 - psi) / (1.0 + psi);
}

double GrowthRate(const std::vector<double>& wealth_curve) {
  PPN_CHECK(!wealth_curve.empty());
  PPN_CHECK_GT(wealth_curve.back(), 0.0);
  return std::log(wealth_curve.back()) /
         static_cast<double>(wealth_curve.size());
}

std::vector<double> HindsightLogOptimalCrp(const market::OhlcPanel& panel,
                                           int64_t start_period,
                                           int64_t end_period,
                                           int iterations) {
  PPN_CHECK_GE(start_period, 1);
  PPN_CHECK_LE(end_period, panel.num_periods());
  PPN_CHECK_LT(start_period, end_period);
  const int64_t m = panel.num_assets();
  std::vector<std::vector<double>> relatives;
  relatives.reserve(end_period - start_period);
  for (int64_t t = start_period; t < end_period; ++t) {
    relatives.push_back(market::PriceRelativesWithCash(panel, t));
  }
  std::vector<double> portfolio(m + 1, 1.0 / static_cast<double>(m + 1));
  const double step = 0.1;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    std::vector<double> gradient(m + 1, 0.0);
    for (const auto& x : relatives) {
      const double r = Dot(portfolio, x);
      for (int64_t i = 0; i <= m; ++i) gradient[i] += x[i] / r;
    }
    for (int64_t i = 0; i <= m; ++i) {
      portfolio[i] += step * gradient[i] /
                      static_cast<double>(relatives.size());
    }
    portfolio = ProjectToSimplex(portfolio);
  }
  return portfolio;
}

double FixedPortfolioGrowthRate(const market::OhlcPanel& panel,
                                const std::vector<double>& portfolio,
                                int64_t start_period, int64_t end_period) {
  PPN_CHECK_LT(start_period, end_period);
  double log_wealth = 0.0;
  for (int64_t t = start_period; t < end_period; ++t) {
    const std::vector<double> x = market::PriceRelativesWithCash(panel, t);
    const double r = Dot(portfolio, x);
    PPN_CHECK_GT(r, 0.0);
    log_wealth += std::log(r);
  }
  return log_wealth / static_cast<double>(end_period - start_period);
}

}  // namespace ppn::analysis
