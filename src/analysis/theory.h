#ifndef PPN_ANALYSIS_THEORY_H_
#define PPN_ANALYSIS_THEORY_H_

#include <vector>

#include "market/dataset.h"

/// \file
/// Utilities around the paper's theoretical results: the growth-rate gap
/// bounds of Theorems 1 and 2, and a hindsight log-optimal CRP oracle used
/// to measure how close a learned policy's growth rate is to the optimum.

namespace ppn::analysis {

/// Theorem 1 gap: the growth rate of the risk-sensitive-optimal policy is
/// within 9/4·λ of the log-optimal growth rate.
double Theorem1Gap(double lambda);

/// Theorem 2 gap: within 9/4·λ + 2γ(1-ψ)/(1+ψ) of the rebalanced
/// log-optimal growth rate.
double Theorem2Gap(double lambda, double gamma, double psi);

/// Empirical growth rate (1/t)·log S_t of a wealth curve starting at 1.
double GrowthRate(const std::vector<double>& wealth_curve);

/// Best constant-rebalanced portfolio in hindsight over a period range,
/// found by projected gradient ascent on the sum of log-returns. Returns
/// the (m+1)-dim portfolio (cash at 0). This is the classic log-optimal
/// CRP oracle used as the reference strategy of Prop. 2.
std::vector<double> HindsightLogOptimalCrp(const market::OhlcPanel& panel,
                                           int64_t start_period,
                                           int64_t end_period,
                                           int iterations = 500);

/// Growth rate achieved by holding a fixed portfolio (rebalanced each
/// period, no transaction costs) over a range.
double FixedPortfolioGrowthRate(const market::OhlcPanel& panel,
                                const std::vector<double>& portfolio,
                                int64_t start_period, int64_t end_period);

}  // namespace ppn::analysis

#endif  // PPN_ANALYSIS_THEORY_H_
