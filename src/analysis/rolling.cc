#include "analysis/rolling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppn::analysis {

std::vector<double> DrawdownSeries(const std::vector<double>& wealth_curve) {
  std::vector<double> drawdowns;
  drawdowns.reserve(wealth_curve.size());
  double peak = 1.0;
  for (const double wealth : wealth_curve) {
    peak = std::max(peak, wealth);
    drawdowns.push_back((peak - wealth) / peak);
  }
  return drawdowns;
}

std::vector<double> RollingSharpe(const std::vector<double>& log_returns,
                                  int window) {
  PPN_CHECK_GE(window, 2);
  std::vector<double> sharpe(log_returns.size(), 0.0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t t = 0; t < log_returns.size(); ++t) {
    sum += log_returns[t];
    sum_sq += log_returns[t] * log_returns[t];
    if (t >= static_cast<size_t>(window)) {
      sum -= log_returns[t - window];
      sum_sq -= log_returns[t - window] * log_returns[t - window];
    }
    if (t + 1 >= static_cast<size_t>(window)) {
      const double mean = sum / window;
      double variance = sum_sq / window - mean * mean;
      // Guard against catastrophic cancellation for near-constant series.
      if (variance < 1e-18 + 1e-12 * mean * mean) variance = 0.0;
      const double stddev = std::sqrt(variance);
      sharpe[t] = stddev > 0.0 ? mean / stddev : 0.0;
    }
  }
  return sharpe;
}

std::vector<double> RollingVolatility(const std::vector<double>& log_returns,
                                      int window) {
  PPN_CHECK_GE(window, 2);
  std::vector<double> volatility(log_returns.size(), 0.0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t t = 0; t < log_returns.size(); ++t) {
    sum += log_returns[t];
    sum_sq += log_returns[t] * log_returns[t];
    if (t >= static_cast<size_t>(window)) {
      sum -= log_returns[t - window];
      sum_sq -= log_returns[t - window] * log_returns[t - window];
    }
    if (t + 1 >= static_cast<size_t>(window)) {
      const double mean = sum / window;
      double variance = sum_sq / window - mean * mean;
      if (variance < 1e-18 + 1e-12 * mean * mean) variance = 0.0;
      volatility[t] = std::sqrt(variance);
    }
  }
  return volatility;
}

std::vector<int64_t> NoTradeSpans(const std::vector<double>& turnover_terms,
                                  double threshold) {
  std::vector<int64_t> spans;
  int64_t current = 0;
  for (const double term : turnover_terms) {
    if (term < threshold) {
      ++current;
    } else if (current > 0) {
      spans.push_back(current);
      current = 0;
    }
  }
  if (current > 0) spans.push_back(current);
  return spans;
}

int64_t LongestUnderwaterSpell(const std::vector<double>& wealth_curve) {
  double peak = 1.0;
  int64_t longest = 0;
  int64_t current = 0;
  for (const double wealth : wealth_curve) {
    if (wealth < peak - 1e-15) {
      ++current;
      longest = std::max(longest, current);
    } else {
      current = 0;
      peak = std::max(peak, wealth);
    }
  }
  return longest;
}

}  // namespace ppn::analysis
