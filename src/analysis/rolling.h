#ifndef PPN_ANALYSIS_ROLLING_H_
#define PPN_ANALYSIS_ROLLING_H_

#include <cstdint>
#include <vector>

/// \file
/// Rolling/series diagnostics over a backtest record: per-period drawdown,
/// rolling Sharpe, rolling volatility, and no-trade span statistics. Used
/// to inspect *when* a policy makes or loses money (Fig-5/6 style
/// analyses) rather than only end-of-run aggregates.

namespace ppn::analysis {

/// Drawdown series: dd_t = (peak_t - S_t) / peak_t with peak including the
/// implicit S_0 = 1.
std::vector<double> DrawdownSeries(const std::vector<double>& wealth_curve);

/// Rolling mean/std Sharpe (not annualized) over a trailing window; the
/// first window-1 entries are 0. Requires window >= 2.
std::vector<double> RollingSharpe(const std::vector<double>& log_returns,
                                  int window);

/// Rolling standard deviation of log-returns over a trailing window; the
/// first window-1 entries are 0. Requires window >= 2.
std::vector<double> RollingVolatility(const std::vector<double>& log_returns,
                                      int window);

/// Lengths of maximal consecutive no-trade runs (turnover term below
/// `threshold`), in chronological order.
std::vector<int64_t> NoTradeSpans(const std::vector<double>& turnover_terms,
                                  double threshold = 1e-3);

/// Longest drawdown spell: number of consecutive periods spent below the
/// previous wealth peak.
int64_t LongestUnderwaterSpell(const std::vector<double>& wealth_curve);

}  // namespace ppn::analysis

#endif  // PPN_ANALYSIS_ROLLING_H_
