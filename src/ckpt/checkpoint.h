#ifndef PPN_CKPT_CHECKPOINT_H_
#define PPN_CKPT_CHECKPOINT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/binio.h"
#include "common/atomic_file.h"

/// \file
/// Crash-safe, versioned binary checkpoints. One checkpoint file is
///
///   magic "PPNCKPT1" (8 bytes)
///   u32 format version
///   payload: named sections in writer order
///   u32 CRC-32 footer over every preceding byte
///
/// with all scalars little-endian (see binio.h). Files are written
/// temp-then-rename (`common/atomic_file.h`), so a crash mid-write leaves
/// the previous checkpoint intact and never a truncated file; truncation
/// or corruption introduced afterwards is caught by the CRC before a
/// single payload byte is handed to the caller — there are no partial
/// loads.
///
/// `Checkpointer` manages a directory of rotating snapshots
/// (`step-<n>.ckpt`), retaining the newest K and restoring from the
/// newest intact one. Observability (when enabled): `ckpt.write.seconds`
/// / `ckpt.restore.seconds` histograms, `ckpt.write.bytes` /
/// `ckpt.restore.bytes` / `ckpt.writes` / `ckpt.restores` counters, and
/// `ckpt.corrupt` counting rejected files.

namespace ppn::ckpt {

inline constexpr char kMagic[8] = {'P', 'P', 'N', 'C', 'K', 'P', 'T', '1'};
inline constexpr uint32_t kFormatVersion = 1;

/// Streams one checkpoint file. Usage: construct, write sections
/// (`BeginSection` then payload through `writer()`), then `Commit`.
/// Destruction without `Commit` leaves the target path untouched.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(const std::string& path);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Marks the start of a named section; the reader re-validates names in
  /// order, so load errors carry section context.
  void BeginSection(const std::string& name);

  /// The payload writer (CRC-tracked).
  BinWriter& writer() { return *writer_; }

  /// Appends the CRC footer and atomically renames the file into place.
  /// False on IO failure (with a message in *error when non-null).
  bool Commit(std::string* error = nullptr);

 private:
  std::string path_;
  AtomicFileWriter file_;
  std::unique_ptr<BinWriter> writer_;
  std::chrono::steady_clock::time_point start_;
  bool committed_ = false;
};

/// Loads and validates one checkpoint file, then hands out a reader over
/// the payload. `Open` verifies magic, version, and CRC up front.
class CheckpointReader {
 public:
  CheckpointReader() = default;

  /// False (with a contextual *error) on missing file, short file, bad
  /// magic, unsupported version, or CRC mismatch. On success `reader()`
  /// is positioned at the first section.
  bool Open(const std::string& path, std::string* error);

  /// Consumes a section header and checks its name; false (with *error)
  /// on mismatch — a versioning or call-order bug, or a foreign file.
  bool EnterSection(const std::string& expected, std::string* error);

  /// Payload reader. Valid after a successful `Open`.
  BinReader& reader() { return *reader_; }

  /// Checks the payload was fully consumed and no read failed; false with
  /// *error otherwise. Call after the last section.
  bool Finish(std::string* error);

 private:
  std::string path_;
  std::string buffer_;
  std::unique_ptr<BinReader> reader_;
};

/// Rotating snapshot manager over one directory. Not thread-safe: one
/// Checkpointer per training run (concurrent runs use distinct dirs).
class Checkpointer {
 public:
  struct Options {
    std::string dir;
    /// Snapshots to keep; older ones are pruned after each write.
    int64_t retain = 3;
  };

  /// Creates the directory if needed. Aborts on an empty dir or
  /// retain < 1.
  explicit Checkpointer(Options options);

  /// `dir/step-<n zero-padded>.ckpt`.
  std::string SnapshotPath(int64_t step) const;

  /// Steps that have a snapshot file, ascending (existence only; validity
  /// is established at restore time).
  std::vector<int64_t> ListSnapshots() const;

  /// Writes the snapshot for `step`: `fill` serializes sections into the
  /// writer, then the file is committed atomically and snapshots beyond
  /// `retain` are pruned (oldest first). False with *error on IO failure
  /// (any partially written temp file is removed; existing snapshots are
  /// untouched).
  bool WriteSnapshot(int64_t step,
                     const std::function<void(CheckpointWriter*)>& fill,
                     std::string* error);

  /// Restores from the newest intact snapshot: corrupt files and failed
  /// `load` calls are reported to stderr (and `ckpt.corrupt`) and the
  /// next older snapshot is tried. `load` deserializes sections and
  /// returns false with an error message on mismatch. On success `*step`
  /// is the restored step. False when no snapshot could be restored
  /// (*error explains; "no snapshots" when the directory is empty).
  bool RestoreLatest(
      const std::function<bool(CheckpointReader*, std::string*)>& load,
      int64_t* step, std::string* error);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace ppn::ckpt

#endif  // PPN_CKPT_CHECKPOINT_H_
