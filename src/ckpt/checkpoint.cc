#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/parse.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::ckpt {

namespace {

/// Section headers are marked so a desynchronized read fails fast with
/// context instead of misinterpreting payload bytes as a name.
constexpr uint32_t kSectionMarker = 0x54434553;  // "SECT" little-endian.

constexpr char kSnapshotPrefix[] = "step-";
constexpr char kSnapshotSuffix[] = ".ckpt";
/// Zero-padded step width: keeps lexicographic and numeric order equal.
constexpr int kStepDigits = 12;

void ObserveSeconds(const char* name,
                    std::chrono::steady_clock::time_point start) {
  if (!obs::Enabled()) return;
  obs::GetHistogram(name).Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

// ---------------------------------------------------- CheckpointWriter --

CheckpointWriter::CheckpointWriter(const std::string& path)
    : path_(path), file_(path), start_(std::chrono::steady_clock::now()) {
  writer_ = std::make_unique<BinWriter>(&file_.stream());
  writer_->WriteBytes(kMagic, sizeof(kMagic));
  writer_->WriteU32(kFormatVersion);
}

CheckpointWriter::~CheckpointWriter() = default;

void CheckpointWriter::BeginSection(const std::string& name) {
  writer_->WriteU32(kSectionMarker);
  writer_->WriteString(name);
}

bool CheckpointWriter::Commit(std::string* error) {
  PPN_CHECK(!committed_) << "checkpoint committed twice: " << path_;
  committed_ = true;
  // Spans the stream flush + atomic rename (the I/O tail of the write; the
  // section payloads stream into the buffered file before this).
  obs::Span span("ckpt.commit");
  span.AddArg("bytes", static_cast<double>(writer_->bytes_written()));
  // The footer is the CRC of everything before it, excluded from itself.
  const uint32_t crc = writer_->crc();
  const uint64_t payload_bytes = writer_->bytes_written();
  writer_->WriteU32(crc);
  if (!writer_->ok()) {
    file_.Commit();  // Clears the temp file; the stream is already bad.
    return Fail(error, "checkpoint write failed (disk full?): " + path_);
  }
  if (!file_.Commit()) {
    return Fail(error, "checkpoint rename failed: " + path_);
  }
  if (obs::Enabled()) {
    obs::GetCounter("ckpt.writes").Add(1.0);
    obs::GetCounter("ckpt.write.bytes")
        .Add(static_cast<double>(payload_bytes + sizeof(crc)));
    ObserveSeconds("ckpt.write.seconds", start_);
  }
  return true;
}

// ---------------------------------------------------- CheckpointReader --

bool CheckpointReader::Open(const std::string& path, std::string* error) {
  const auto start = std::chrono::steady_clock::now();
  path_ = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open checkpoint: " + path);
  buffer_.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Fail(error, "read error on checkpoint: " + path);
  }
  constexpr size_t kMinSize = sizeof(kMagic) + sizeof(uint32_t) * 2;
  if (buffer_.size() < kMinSize) {
    if (obs::Enabled()) obs::GetCounter("ckpt.corrupt").Add(1.0);
    return Fail(error, "checkpoint too short (truncated?): " + path);
  }
  if (std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
    if (obs::Enabled()) obs::GetCounter("ckpt.corrupt").Add(1.0);
    return Fail(error, "bad magic (not a PPN checkpoint): " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer_.data() + buffer_.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const uint32_t computed_crc =
      Crc32Of(buffer_.data(), buffer_.size() - sizeof(stored_crc));
  if (stored_crc != computed_crc) {
    if (obs::Enabled()) obs::GetCounter("ckpt.corrupt").Add(1.0);
    return Fail(error, "CRC mismatch (corrupt or truncated checkpoint): " +
                           path);
  }
  uint32_t version = 0;
  std::memcpy(&version, buffer_.data() + sizeof(kMagic), sizeof(version));
  if (version != kFormatVersion) {
    return Fail(error, "unsupported checkpoint format version " +
                           std::to_string(version) + ": " + path);
  }
  const size_t header = sizeof(kMagic) + sizeof(version);
  reader_ = std::make_unique<BinReader>(
      buffer_.data() + header, buffer_.size() - header - sizeof(stored_crc));
  if (obs::Enabled()) {
    obs::GetCounter("ckpt.restores").Add(1.0);
    obs::GetCounter("ckpt.restore.bytes")
        .Add(static_cast<double>(buffer_.size()));
    ObserveSeconds("ckpt.restore.seconds", start);
  }
  return true;
}

bool CheckpointReader::EnterSection(const std::string& expected,
                                    std::string* error) {
  PPN_CHECK(reader_ != nullptr) << "EnterSection before Open";
  uint32_t marker = 0;
  std::string name;
  if (!reader_->ReadU32(&marker) || marker != kSectionMarker ||
      !reader_->ReadString(&name)) {
    return Fail(error, "expected section '" + expected +
                           "', found malformed section header: " + path_);
  }
  if (name != expected) {
    return Fail(error, "expected section '" + expected + "', found '" + name +
                           "': " + path_);
  }
  return true;
}

bool CheckpointReader::Finish(std::string* error) {
  PPN_CHECK(reader_ != nullptr) << "Finish before Open";
  if (reader_->failed()) {
    return Fail(error, "checkpoint payload underran a read: " + path_);
  }
  if (reader_->remaining() != 0) {
    return Fail(error, std::to_string(reader_->remaining()) +
                           " trailing payload bytes: " + path_);
  }
  return true;
}

// --------------------------------------------------------- Checkpointer --

Checkpointer::Checkpointer(Options options) : options_(std::move(options)) {
  PPN_CHECK(!options_.dir.empty()) << "checkpoint dir must be set";
  PPN_CHECK_GE(options_.retain, 1);
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  PPN_CHECK(!ec) << "cannot create checkpoint dir" << options_.dir << ":"
                 << ec.message();
}

std::string Checkpointer::SnapshotPath(int64_t step) const {
  PPN_CHECK_GE(step, 0);
  std::string digits = std::to_string(step);
  if (digits.size() < kStepDigits) {
    digits.insert(0, kStepDigits - digits.size(), '0');
  }
  return options_.dir + "/" + kSnapshotPrefix + digits + kSnapshotSuffix;
}

std::vector<int64_t> Checkpointer::ListSnapshots() const {
  std::vector<int64_t> steps;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= std::strlen(kSnapshotPrefix) +
                           std::strlen(kSnapshotSuffix) ||
        name.rfind(kSnapshotPrefix, 0) != 0 ||
        name.substr(name.size() - std::strlen(kSnapshotSuffix)) !=
            kSnapshotSuffix) {
      continue;
    }
    const std::string digits =
        name.substr(std::strlen(kSnapshotPrefix),
                    name.size() - std::strlen(kSnapshotPrefix) -
                        std::strlen(kSnapshotSuffix));
    const std::optional<int64_t> step = ParseInt64(digits);
    if (step.has_value() && *step >= 0) steps.push_back(*step);
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

bool Checkpointer::WriteSnapshot(
    int64_t step, const std::function<void(CheckpointWriter*)>& fill,
    std::string* error) {
  CheckpointWriter writer(SnapshotPath(step));
  fill(&writer);
  if (!writer.Commit(error)) return false;
  // Prune beyond the retention window, oldest first. Best effort: a
  // leftover snapshot is harmless, a failed prune must not fail the write.
  std::vector<int64_t> steps = ListSnapshots();
  if (static_cast<int64_t>(steps.size()) > options_.retain) {
    for (size_t i = 0; i + options_.retain < steps.size(); ++i) {
      std::remove(SnapshotPath(steps[i]).c_str());
    }
  }
  return true;
}

bool Checkpointer::RestoreLatest(
    const std::function<bool(CheckpointReader*, std::string*)>& load,
    int64_t* step, std::string* error) {
  PPN_CHECK(step != nullptr);
  const std::vector<int64_t> steps = ListSnapshots();
  if (steps.empty()) {
    return Fail(error, "no snapshots in " + options_.dir);
  }
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    CheckpointReader reader;
    std::string attempt_error;
    if (reader.Open(SnapshotPath(*it), &attempt_error) &&
        load(&reader, &attempt_error)) {
      *step = *it;
      return true;
    }
    std::fprintf(stderr,
                 "ppn: skipping unusable checkpoint (step %lld): %s\n",
                 static_cast<long long>(*it), attempt_error.c_str());
  }
  return Fail(error,
              "no intact snapshot could be restored from " + options_.dir);
}

}  // namespace ppn::ckpt
