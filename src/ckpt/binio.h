#ifndef PPN_CKPT_BINIO_H_
#define PPN_CKPT_BINIO_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

/// \file
/// Binary serialization primitives for the checkpoint format: a CRC-32
/// accumulator, a little-endian stream writer that tracks its own CRC and
/// byte count, and a bounds-checked reader over an in-memory buffer.
///
/// All multi-byte values are little-endian on disk. The library targets
/// little-endian hosts (x86-64, AArch64), so scalar encoding is a plain
/// byte copy; the static_assert below turns a big-endian port into a
/// compile error instead of silent corruption. Floats are serialized as
/// their IEEE-754 bit patterns, so NaN/±Inf and every finite value
/// round-trip exactly — unlike the legacy text format.

namespace ppn::ckpt {

static_assert(std::endian::native == std::endian::little,
              "the checkpoint format assumes a little-endian host");

/// Running CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
class Crc32 {
 public:
  void Update(const void* data, size_t size);
  /// The checksum of everything fed so far.
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
uint32_t Crc32Of(const void* data, size_t size);

/// Little-endian writer over an ostream; tracks the CRC and byte count of
/// everything written (the checkpoint footer is derived from both).
class BinWriter {
 public:
  /// `out` must outlive the writer.
  explicit BinWriter(std::ostream* out);

  void WriteBytes(const void* data, size_t size);
  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteF32(float value);
  void WriteF64(double value);
  /// u64 length followed by the raw bytes.
  void WriteString(const std::string& text);
  void WriteF32Array(const float* data, int64_t count);
  void WriteF64Array(const double* data, int64_t count);

  /// CRC-32 of all bytes written through this writer.
  uint32_t crc() const { return crc_.value(); }
  /// Total bytes written through this writer.
  uint64_t bytes_written() const { return bytes_written_; }
  /// True while the underlying stream accepted every write.
  bool ok() const { return out_->good(); }

 private:
  std::ostream* out_;
  Crc32 crc_;
  uint64_t bytes_written_ = 0;
};

/// Bounds-checked little-endian reader over an in-memory buffer (the
/// checkpoint reader loads and CRC-verifies the whole file up front).
/// Every `Read*` returns false on exhaustion and the reader stays failed
/// from then on, so a sequence of reads needs only one final check.
class BinReader {
 public:
  /// `data` must outlive the reader.
  BinReader(const void* data, size_t size);

  bool ReadBytes(void* out, size_t size);
  bool ReadU8(uint8_t* out);
  bool ReadU32(uint32_t* out);
  bool ReadU64(uint64_t* out);
  bool ReadI64(int64_t* out);
  bool ReadF32(float* out);
  bool ReadF64(double* out);
  /// Rejects lengths larger than the remaining payload.
  bool ReadString(std::string* out);
  bool ReadF32Array(float* out, int64_t count);
  bool ReadF64Array(double* out, int64_t count);

  size_t remaining() const { return size_ - offset_; }
  size_t offset() const { return offset_; }
  /// True once any read has failed.
  bool failed() const { return failed_; }

 private:
  const unsigned char* data_;
  size_t size_;
  size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace ppn::ckpt

#endif  // PPN_CKPT_BINIO_H_
