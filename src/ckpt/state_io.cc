#include "ckpt/state_io.h"

#include "common/check.h"

namespace ppn::ckpt {

void WriteRng(BinWriter* writer, const Rng& rng) {
  PPN_CHECK(writer != nullptr);
  const Rng::State state = rng.GetState();
  for (const uint64_t word : state.words) writer->WriteU64(word);
  writer->WriteF64(state.spare_normal);
  writer->WriteU8(state.has_spare_normal ? 1 : 0);
}

bool ReadRng(BinReader* reader, Rng* rng) {
  PPN_CHECK(reader != nullptr);
  PPN_CHECK(rng != nullptr);
  Rng::State state;
  for (uint64_t& word : state.words) {
    if (!reader->ReadU64(&word)) return false;
  }
  uint8_t has_spare = 0;
  if (!reader->ReadF64(&state.spare_normal) || !reader->ReadU8(&has_spare)) {
    return false;
  }
  state.has_spare_normal = has_spare != 0;
  rng->SetState(state);
  return true;
}

void WriteDoubleVector(BinWriter* writer,
                       const std::vector<double>& values) {
  PPN_CHECK(writer != nullptr);
  writer->WriteI64(static_cast<int64_t>(values.size()));
  writer->WriteF64Array(values.data(), static_cast<int64_t>(values.size()));
}

bool ReadDoubleVector(BinReader* reader, std::vector<double>* values) {
  PPN_CHECK(reader != nullptr);
  PPN_CHECK(values != nullptr);
  int64_t size = 0;
  if (!reader->ReadI64(&size) || size < 0 ||
      static_cast<size_t>(size) * sizeof(double) > reader->remaining()) {
    return false;
  }
  values->resize(static_cast<size_t>(size));
  return reader->ReadF64Array(values->data(), size);
}

}  // namespace ppn::ckpt
