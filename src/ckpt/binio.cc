#include "ckpt/binio.h"

#include <array>
#include <cstring>

#include "common/check.h"

namespace ppn::ckpt {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t size) {
  const auto& table = CrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = state_;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

uint32_t Crc32Of(const void* data, size_t size) {
  Crc32 crc;
  crc.Update(data, size);
  return crc.value();
}

// ------------------------------------------------------------ BinWriter --

BinWriter::BinWriter(std::ostream* out) : out_(out) {
  PPN_CHECK(out != nullptr);
}

void BinWriter::WriteBytes(const void* data, size_t size) {
  if (size == 0) return;
  out_->write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  crc_.Update(data, size);
  bytes_written_ += size;
}

void BinWriter::WriteU8(uint8_t value) { WriteBytes(&value, sizeof(value)); }
void BinWriter::WriteU32(uint32_t value) { WriteBytes(&value, sizeof(value)); }
void BinWriter::WriteU64(uint64_t value) { WriteBytes(&value, sizeof(value)); }

void BinWriter::WriteI64(int64_t value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BinWriter::WriteF32(float value) { WriteBytes(&value, sizeof(value)); }
void BinWriter::WriteF64(double value) { WriteBytes(&value, sizeof(value)); }

void BinWriter::WriteString(const std::string& text) {
  WriteU64(text.size());
  WriteBytes(text.data(), text.size());
}

void BinWriter::WriteF32Array(const float* data, int64_t count) {
  PPN_CHECK_GE(count, 0);
  WriteBytes(data, static_cast<size_t>(count) * sizeof(float));
}

void BinWriter::WriteF64Array(const double* data, int64_t count) {
  PPN_CHECK_GE(count, 0);
  WriteBytes(data, static_cast<size_t>(count) * sizeof(double));
}

// ------------------------------------------------------------ BinReader --

BinReader::BinReader(const void* data, size_t size)
    : data_(static_cast<const unsigned char*>(data)), size_(size) {
  PPN_CHECK(data != nullptr || size == 0);
}

bool BinReader::ReadBytes(void* out, size_t size) {
  if (failed_ || size > size_ - offset_) {
    failed_ = true;
    return false;
  }
  std::memcpy(out, data_ + offset_, size);
  offset_ += size;
  return true;
}

bool BinReader::ReadU8(uint8_t* out) { return ReadBytes(out, sizeof(*out)); }
bool BinReader::ReadU32(uint32_t* out) { return ReadBytes(out, sizeof(*out)); }
bool BinReader::ReadU64(uint64_t* out) { return ReadBytes(out, sizeof(*out)); }

bool BinReader::ReadI64(int64_t* out) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

bool BinReader::ReadF32(float* out) { return ReadBytes(out, sizeof(*out)); }
bool BinReader::ReadF64(double* out) { return ReadBytes(out, sizeof(*out)); }

bool BinReader::ReadString(std::string* out) {
  uint64_t length = 0;
  if (!ReadU64(&length)) return false;
  if (length > remaining()) {
    failed_ = true;
    return false;
  }
  out->resize(static_cast<size_t>(length));
  return ReadBytes(out->data(), static_cast<size_t>(length));
}

bool BinReader::ReadF32Array(float* out, int64_t count) {
  PPN_CHECK_GE(count, 0);
  return ReadBytes(out, static_cast<size_t>(count) * sizeof(float));
}

bool BinReader::ReadF64Array(double* out, int64_t count) {
  PPN_CHECK_GE(count, 0);
  return ReadBytes(out, static_cast<size_t>(count) * sizeof(double));
}

}  // namespace ppn::ckpt
