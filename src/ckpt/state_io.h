#ifndef PPN_CKPT_STATE_IO_H_
#define PPN_CKPT_STATE_IO_H_

#include <string>
#include <vector>

#include "ckpt/binio.h"
#include "common/random.h"

/// \file
/// Serialization helpers for common training-state pieces shared by the
/// PPN and DDPG trainers: RNG streams and (m+1)-dim portfolio vectors.

namespace ppn::ckpt {

/// Writes the complete generator state (xoshiro words + Box–Muller spare).
void WriteRng(BinWriter* writer, const Rng& rng);

/// Restores a stream written by `WriteRng`; false on short read.
bool ReadRng(BinReader* reader, Rng* rng);

/// Writes a double vector as i64 length + raw payload.
void WriteDoubleVector(BinWriter* writer, const std::vector<double>& values);

/// Reads a vector written by `WriteDoubleVector`; false on short read or
/// a length exceeding the remaining payload.
bool ReadDoubleVector(BinReader* reader, std::vector<double>* values);

}  // namespace ppn::ckpt

#endif  // PPN_CKPT_STATE_IO_H_
