#ifndef PPN_STRATEGIES_MEAN_REVERSION_H_
#define PPN_STRATEGIES_MEAN_REVERSION_H_

#include "strategies/common.h"

/// \file
/// Mean-reversion baselines: PAMR, CWMR, OLMAR, RMR and WMAMR. All maintain
/// a risk-asset portfolio updated from the latest price relatives under the
/// assumption that prices revert.

namespace ppn::strategies {

/// PAMR (Li et al. 2012): passive-aggressive update against the last
/// relative; shifts weight toward losers when the portfolio return exceeds
/// the sensitivity threshold ε.
class PamrStrategy : public RelativeTrackingStrategy {
 public:
  explicit PamrStrategy(double epsilon = 0.5);

  std::string name() const override { return "PAMR"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  double epsilon_;
  std::vector<double> weights_;
  int64_t folded_through_ = 0;
};

/// CWMR (Li et al. 2011, deterministic/variance variant): maintains a
/// Gaussian belief (μ, Σ) over portfolios and enforces
/// μᵀx + φ·sqrt(xᵀΣx) <= ε after each observation, tightening λ by
/// bisection on the KKT condition.
class CwmrStrategy : public RelativeTrackingStrategy {
 public:
  CwmrStrategy(double epsilon = 0.5, double phi = 2.0);

  std::string name() const override { return "CWMR"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  void Update(const std::vector<double>& x);

  double epsilon_;
  double phi_;
  std::vector<double> mu_;
  std::vector<std::vector<double>> sigma_;
  int64_t folded_through_ = 0;
};

/// OLMAR (Li & Hoi 2012): predicts next relatives from a moving average of
/// prices and takes a passive-aggressive step toward portfolios whose
/// predicted return is at least ε.
class OlmarStrategy : public RelativeTrackingStrategy {
 public:
  OlmarStrategy(int window = 5, double epsilon = 10.0);

  std::string name() const override { return "OLMAR"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  int window_;
  double epsilon_;
  std::vector<double> weights_;
};

/// RMR (Huang et al. 2013): OLMAR with the moving average replaced by the
/// outlier-robust L1-median of recent prices.
class RmrStrategy : public RelativeTrackingStrategy {
 public:
  RmrStrategy(int window = 5, double epsilon = 5.0);

  std::string name() const override { return "RMR"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  int window_;
  double epsilon_;
  std::vector<double> weights_;
};

/// WMAMR (Gao & Zhang 2013): PAMR driven by a weighted moving average of
/// the recent price relatives instead of only the latest one.
class WmamrStrategy : public RelativeTrackingStrategy {
 public:
  WmamrStrategy(int window = 5, double epsilon = 0.5);

  std::string name() const override { return "WMAMR"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  int window_;
  double epsilon_;
  std::vector<double> weights_;
  int64_t folded_through_ = 0;
};

}  // namespace ppn::strategies

#endif  // PPN_STRATEGIES_MEAN_REVERSION_H_
