#ifndef PPN_STRATEGIES_COMMON_H_
#define PPN_STRATEGIES_COMMON_H_

#include <string>
#include <vector>

#include "backtest/strategy.h"

/// \file
/// Shared machinery for the classic online-portfolio-selection baselines:
/// lazy price-relative tracking (no lookahead), portfolio helpers, and the
/// L1-median used by RMR.

namespace ppn::strategies {

/// Base class that incrementally materializes the history of risk-asset
/// price relatives x_1 .. x_{t-1} as decisions are requested, guaranteeing
/// by construction that a strategy never reads period >= t.
class RelativeTrackingStrategy : public backtest::Strategy {
 public:
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;

 protected:
  /// Ensures relatives for periods 1..t-1 are cached and returns the cache;
  /// entry [s-1] holds x_s (risk assets only, size m).
  const std::vector<std::vector<double>>& HistoryUpTo(
      const market::OhlcPanel& panel, int64_t t);

  /// Number of risk assets (valid after Reset).
  int64_t num_assets() const { return num_assets_; }

 private:
  std::vector<std::vector<double>> history_;
  int64_t next_period_ = 1;
  int64_t num_assets_ = 0;
};

/// Uniform portfolio over the m risk assets, expressed in the (m+1)-dim
/// cash-first layout (cash weight 0).
std::vector<double> UniformRiskPortfolio(int64_t num_assets);

/// Wraps an m-dim risk-asset weight vector into the (m+1)-dim cash-first
/// layout. Negative entries are clipped and the result renormalized; if all
/// mass is clipped the uniform risk portfolio is returned.
std::vector<double> WithCash(const std::vector<double>& risk_weights);

/// Geometric L1-median (Weiszfeld algorithm) of a set of equally sized
/// points; used by Robust Median Reversion.
std::vector<double> L1Median(const std::vector<std::vector<double>>& points,
                             int max_iterations = 200, double tolerance = 1e-9);

}  // namespace ppn::strategies

#endif  // PPN_STRATEGIES_COMMON_H_
