#include "strategies/common.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace ppn::strategies {

void RelativeTrackingStrategy::Reset(const market::OhlcPanel& panel,
                                     int64_t first_period) {
  (void)first_period;
  history_.clear();
  next_period_ = 1;
  num_assets_ = panel.num_assets();
}

const std::vector<std::vector<double>>& RelativeTrackingStrategy::HistoryUpTo(
    const market::OhlcPanel& panel, int64_t t) {
  PPN_CHECK_GE(t, 1);
  for (; next_period_ < t; ++next_period_) {
    history_.push_back(market::PriceRelatives(panel, next_period_));
  }
  return history_;
}

std::vector<double> UniformRiskPortfolio(int64_t num_assets) {
  PPN_CHECK_GT(num_assets, 0);
  std::vector<double> portfolio(num_assets + 1, 0.0);
  for (int64_t i = 1; i <= num_assets; ++i) {
    portfolio[i] = 1.0 / static_cast<double>(num_assets);
  }
  return portfolio;
}

std::vector<double> WithCash(const std::vector<double>& risk_weights) {
  PPN_CHECK(!risk_weights.empty());
  std::vector<double> portfolio(risk_weights.size() + 1, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < risk_weights.size(); ++i) {
    const double w = risk_weights[i] > 0.0 ? risk_weights[i] : 0.0;
    portfolio[i + 1] = w;
    total += w;
  }
  if (total <= 0.0) {
    return UniformRiskPortfolio(static_cast<int64_t>(risk_weights.size()));
  }
  for (size_t i = 1; i < portfolio.size(); ++i) portfolio[i] /= total;
  return portfolio;
}

std::vector<double> L1Median(const std::vector<std::vector<double>>& points,
                             int max_iterations, double tolerance) {
  PPN_CHECK(!points.empty());
  const size_t dim = points[0].size();
  std::vector<double> median(dim, 0.0);
  for (const auto& point : points) {
    PPN_CHECK_EQ(point.size(), dim);
    for (size_t d = 0; d < dim; ++d) median[d] += point[d];
  }
  for (double& v : median) v /= static_cast<double>(points.size());

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    std::vector<double> next(dim, 0.0);
    double weight_sum = 0.0;
    for (const auto& point : points) {
      double distance_sq = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double delta = point[d] - median[d];
        distance_sq += delta * delta;
      }
      const double distance = std::sqrt(distance_sq);
      if (distance < 1e-12) {
        // Median coincides with a data point; Weiszfeld is stationary here.
        return median;
      }
      const double weight = 1.0 / distance;
      weight_sum += weight;
      for (size_t d = 0; d < dim; ++d) next[d] += weight * point[d];
    }
    double shift = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      next[d] /= weight_sum;
      shift += std::fabs(next[d] - median[d]);
    }
    median = std::move(next);
    if (shift < tolerance) break;
  }
  return median;
}

}  // namespace ppn::strategies
