#include "strategies/universal.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace ppn::strategies {

// ---------------------------------------------------------------- UP ----

UpStrategy::UpStrategy(int num_samples, uint64_t seed)
    : num_samples_(num_samples), seed_(seed) {
  PPN_CHECK_GT(num_samples, 0);
}

void UpStrategy::Reset(const market::OhlcPanel& panel, int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  Rng rng(seed_);
  samples_.assign(num_samples_, {});
  for (auto& sample : samples_) {
    sample = rng.Dirichlet(static_cast<int>(num_assets()), 1.0);
  }
  sample_wealth_.assign(num_samples_, 1.0);
  wealth_updated_through_ = 0;
}

std::vector<double> UpStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  const auto& history = HistoryUpTo(view.panel, view.period);
  // Fold newly observed relatives into each sample's running wealth.
  for (; wealth_updated_through_ < static_cast<int64_t>(history.size());
       ++wealth_updated_through_) {
    const auto& x = history[wealth_updated_through_];
    for (int s = 0; s < num_samples_; ++s) {
      sample_wealth_[s] *= Dot(samples_[s], x);
    }
  }
  std::vector<double> weights(num_assets(), 0.0);
  double total_wealth = 0.0;
  for (int s = 0; s < num_samples_; ++s) total_wealth += sample_wealth_[s];
  PPN_CHECK_GT(total_wealth, 0.0);
  for (int s = 0; s < num_samples_; ++s) {
    const double w = sample_wealth_[s] / total_wealth;
    for (int64_t i = 0; i < num_assets(); ++i) {
      weights[i] += w * samples_[s][i];
    }
  }
  return WithCash(weights);
}

// ---------------------------------------------------------------- EG ----

EgStrategy::EgStrategy(double learning_rate) : learning_rate_(learning_rate) {
  PPN_CHECK_GT(learning_rate, 0.0);
}

void EgStrategy::Reset(const market::OhlcPanel& panel, int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  weights_.assign(panel.num_assets(),
                  1.0 / static_cast<double>(panel.num_assets()));
  folded_through_ = 0;
}

std::vector<double> EgStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  const auto& history = HistoryUpTo(view.panel, view.period);
  for (; folded_through_ < static_cast<int64_t>(history.size());
       ++folded_through_) {
    const auto& x = history[folded_through_];
    const double portfolio_return = Dot(weights_, x);
    PPN_CHECK_GT(portfolio_return, 0.0);
    double total = 0.0;
    for (int64_t i = 0; i < num_assets(); ++i) {
      weights_[i] *= std::exp(learning_rate_ * x[i] / portfolio_return);
      total += weights_[i];
    }
    for (double& w : weights_) w /= total;
  }
  return WithCash(weights_);
}

// --------------------------------------------------------------- ONS ----

OnsStrategy::OnsStrategy(double beta, double delta)
    : beta_(beta), delta_(delta) {
  PPN_CHECK_GT(beta, 0.0);
  PPN_CHECK(delta >= 0.0 && delta < 1.0);
}

void OnsStrategy::Reset(const market::OhlcPanel& panel, int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  const int64_t m = panel.num_assets();
  weights_.assign(m, 1.0 / static_cast<double>(m));
  a_matrix_.assign(m, std::vector<double>(m, 0.0));
  for (int64_t i = 0; i < m; ++i) a_matrix_[i][i] = 1.0;
  b_vector_.assign(m, 0.0);
  folded_through_ = 0;
}

std::vector<double> OnsStrategy::ProjectANorm(
    const std::vector<double>& y) const {
  // Projected gradient descent on f(q) = (q - y)ᵀ A (q - y).
  const int64_t m = num_assets();
  std::vector<double> q = ProjectToSimplex(y);
  // Lipschitz step from the largest diagonal entry (A is PSD dominant).
  double max_diag = 1.0;
  for (int64_t i = 0; i < m; ++i) max_diag = std::max(max_diag, a_matrix_[i][i]);
  const double step = 0.5 / max_diag;
  for (int iteration = 0; iteration < 100; ++iteration) {
    std::vector<double> gradient(m, 0.0);
    for (int64_t i = 0; i < m; ++i) {
      double g = 0.0;
      for (int64_t j = 0; j < m; ++j) g += a_matrix_[i][j] * (q[j] - y[j]);
      gradient[i] = 2.0 * g;
    }
    std::vector<double> next(m);
    double shift = 0.0;
    for (int64_t i = 0; i < m; ++i) next[i] = q[i] - step * gradient[i];
    next = ProjectToSimplex(next);
    for (int64_t i = 0; i < m; ++i) shift += std::fabs(next[i] - q[i]);
    q = std::move(next);
    if (shift < 1e-10) break;
  }
  return q;
}

std::vector<double> OnsStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  const auto& history = HistoryUpTo(view.panel, view.period);
  const int64_t m = num_assets();
  for (; folded_through_ < static_cast<int64_t>(history.size());
       ++folded_through_) {
    const auto& x = history[folded_through_];
    const double portfolio_return = Dot(weights_, x);
    PPN_CHECK_GT(portfolio_return, 0.0);
    // Gradient of -log(wᵀx).
    std::vector<double> gradient(m);
    for (int64_t i = 0; i < m; ++i) gradient[i] = -x[i] / portfolio_return;
    for (int64_t i = 0; i < m; ++i) {
      b_vector_[i] += (1.0 + 1.0 / beta_) * gradient[i];
      for (int64_t j = 0; j < m; ++j) {
        a_matrix_[i][j] += gradient[i] * gradient[j];
      }
    }
    // Newton target: y = -(1/β) A⁻¹ b, computed by solving A y = -(1/β) b
    // with Gauss-Seidel (A is symmetric positive definite).
    std::vector<double> y(m, 0.0);
    for (int sweep = 0; sweep < 50; ++sweep) {
      for (int64_t i = 0; i < m; ++i) {
        double residual = -b_vector_[i] / beta_;
        for (int64_t j = 0; j < m; ++j) {
          if (j != i) residual -= a_matrix_[i][j] * y[j];
        }
        y[i] = residual / a_matrix_[i][i];
      }
    }
    std::vector<double> projected = ProjectANorm(y);
    for (int64_t i = 0; i < m; ++i) {
      weights_[i] = (1.0 - delta_) * projected[i] +
                    delta_ / static_cast<double>(m);
    }
  }
  return WithCash(weights_);
}

}  // namespace ppn::strategies
