#ifndef PPN_STRATEGIES_ANTICOR_H_
#define PPN_STRATEGIES_ANTICOR_H_

#include "strategies/common.h"

/// \file
/// Anticor (Borodin, El-Yaniv & Gogan 2004): exploits anti-correlation by
/// transferring wealth from recent winners to assets whose returns lag the
/// winners' with positive cross-correlation.

namespace ppn::strategies {

/// Anticor with a single window size w: compares the log-relative matrices
/// of two consecutive windows of length w and moves weight along positive
/// cross-correlations from outperforming to underperforming assets.
class AnticorStrategy : public RelativeTrackingStrategy {
 public:
  explicit AnticorStrategy(int window = 5);

  std::string name() const override { return "Anticor"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  int window_;
  std::vector<double> weights_;
  int64_t folded_through_ = 0;
};

}  // namespace ppn::strategies

#endif  // PPN_STRATEGIES_ANTICOR_H_
