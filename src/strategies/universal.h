#ifndef PPN_STRATEGIES_UNIVERSAL_H_
#define PPN_STRATEGIES_UNIVERSAL_H_

#include "common/random.h"
#include "strategies/common.h"

/// \file
/// Follow-the-winner / regret-minimizing baselines: Cover's Universal
/// Portfolios (sampled approximation), Exponential Gradient, and the
/// Online Newton Step.

namespace ppn::strategies {

/// UP (Cover 1991): performance-weighted average over CRPs, approximated by
/// Monte-Carlo integration over Dirichlet(1)-sampled constant portfolios.
class UpStrategy : public RelativeTrackingStrategy {
 public:
  explicit UpStrategy(int num_samples = 500, uint64_t seed = 42);

  std::string name() const override { return "UP"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  int num_samples_;
  uint64_t seed_;
  std::vector<std::vector<double>> samples_;  // Constant portfolios (risk).
  std::vector<double> sample_wealth_;         // Running wealth per sample.
  int64_t wealth_updated_through_ = 0;        // Periods folded into wealth.
};

/// EG (Helmbold et al. 1998): multiplicative update
/// a_{t,i} ∝ a_{t-1,i} exp(η x_{t-1,i} / (a_{t-1}ᵀ x_{t-1})).
class EgStrategy : public RelativeTrackingStrategy {
 public:
  explicit EgStrategy(double learning_rate = 0.05);

  std::string name() const override { return "EG"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  double learning_rate_;
  std::vector<double> weights_;  // Risk-asset portfolio.
  int64_t folded_through_ = 0;
};

/// ONS (Agarwal et al. 2006): online Newton step on the log-loss with a
/// generalized (A-norm) projection onto the simplex.
class OnsStrategy : public RelativeTrackingStrategy {
 public:
  /// `beta` is the inverse step parameter, `delta` mixes toward uniform.
  OnsStrategy(double beta = 1.0, double delta = 0.125);

  std::string name() const override { return "ONS"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  /// argmin_{q in simplex} (q - y)ᵀ A (q - y) via projected gradient.
  std::vector<double> ProjectANorm(const std::vector<double>& y) const;

  double beta_;
  double delta_;
  std::vector<double> weights_;
  std::vector<std::vector<double>> a_matrix_;  // A_t = I + Σ g gᵀ.
  std::vector<double> b_vector_;               // Σ (1 + 1/β) g.
  int64_t folded_through_ = 0;
};

}  // namespace ppn::strategies

#endif  // PPN_STRATEGIES_UNIVERSAL_H_
