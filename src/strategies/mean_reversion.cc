#include "strategies/mean_reversion.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace ppn::strategies {

namespace {

// Passive-aggressive step: move `weights` by tau * (signal - mean(signal))
// and project back onto the simplex.
std::vector<double> PassiveAggressiveStep(const std::vector<double>& weights,
                                          const std::vector<double>& signal,
                                          double tau) {
  const size_t m = weights.size();
  const double signal_mean = Mean(signal);
  std::vector<double> next(m);
  for (size_t i = 0; i < m; ++i) {
    next[i] = weights[i] + tau * (signal[i] - signal_mean);
  }
  return ProjectToSimplex(next);
}

// Squared norm of the mean-centered signal (the PA step denominator).
double CenteredSquaredNorm(const std::vector<double>& signal) {
  const double signal_mean = Mean(signal);
  double total = 0.0;
  for (const double s : signal) total += (s - signal_mean) * (s - signal_mean);
  return total;
}

}  // namespace

// -------------------------------------------------------------- PAMR ----

PamrStrategy::PamrStrategy(double epsilon) : epsilon_(epsilon) {
  PPN_CHECK_GE(epsilon, 0.0);
}

void PamrStrategy::Reset(const market::OhlcPanel& panel,
                         int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  weights_.assign(panel.num_assets(),
                  1.0 / static_cast<double>(panel.num_assets()));
  folded_through_ = 0;
}

std::vector<double> PamrStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  const auto& history = HistoryUpTo(view.panel, view.period);
  for (; folded_through_ < static_cast<int64_t>(history.size());
       ++folded_through_) {
    const auto& x = history[folded_through_];
    const double loss = std::max(0.0, Dot(weights_, x) - epsilon_);
    if (loss > 0.0) {
      const double denominator = CenteredSquaredNorm(x);
      if (denominator > 1e-12) {
        const double tau = loss / denominator;
        weights_ = PassiveAggressiveStep(weights_, x, -tau);
      }
    }
  }
  return WithCash(weights_);
}

// -------------------------------------------------------------- CWMR ----

CwmrStrategy::CwmrStrategy(double epsilon, double phi)
    : epsilon_(epsilon), phi_(phi) {
  PPN_CHECK_GE(phi, 0.0);
}

void CwmrStrategy::Reset(const market::OhlcPanel& panel,
                         int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  const int64_t m = panel.num_assets();
  mu_.assign(m, 1.0 / static_cast<double>(m));
  sigma_.assign(m, std::vector<double>(m, 0.0));
  for (int64_t i = 0; i < m; ++i) {
    sigma_[i][i] = 1.0 / static_cast<double>(m * m);
  }
  folded_through_ = 0;
}

void CwmrStrategy::Update(const std::vector<double>& x) {
  const size_t m = mu_.size();
  // Current confidence bound: want μᵀx + φ sqrt(xᵀΣx) <= ε.
  std::vector<double> sigma_x(m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) sigma_x[i] += sigma_[i][j] * x[j];
  }
  const double v = Dot(x, sigma_x);  // xᵀΣx.
  const double mean_return = Dot(mu_, x);
  if (mean_return + phi_ * std::sqrt(std::max(v, 0.0)) <= epsilon_) {
    return;  // Constraint already satisfied: passive.
  }
  // Mean-reversion update family, parameterized by λ >= 0:
  //   μ(λ)  = μ - λ Σ (x - x̄ 1)      (x̄ keeps μ on the simplex hyperplane)
  //   Σ(λ)⁻¹ = Σ⁻¹ + 2 λ φ x xᵀ  →  Σ(λ) = Σ - (2λφ / (1 + 2λφ v)) Σx xᵀΣ.
  // Find the smallest λ activating the constraint by bisection.
  double ones_sigma_ones = 0.0;
  double ones_sigma_x = 0.0;
  for (size_t i = 0; i < m; ++i) {
    ones_sigma_x += sigma_x[i];
    for (size_t j = 0; j < m; ++j) ones_sigma_ones += sigma_[i][j];
  }
  const double x_bar =
      ones_sigma_ones > 1e-18 ? ones_sigma_x / ones_sigma_ones : Mean(x);

  auto constraint_value = [&](double lambda) {
    // μ(λ)ᵀx.
    double mu_term = mean_return;
    for (size_t i = 0; i < m; ++i) {
      // (Σ(x - x̄1))_i = sigma_x[i] - x̄ * (Σ1)_i.
      double sigma_ones_i = 0.0;
      for (size_t j = 0; j < m; ++j) sigma_ones_i += sigma_[i][j];
      mu_term -= lambda * (sigma_x[i] - x_bar * sigma_ones_i) * x[i];
    }
    const double shrink = 1.0 + 2.0 * lambda * phi_ * v;
    const double v_new = v / shrink;
    return mu_term + phi_ * std::sqrt(std::max(v_new, 0.0)) - epsilon_;
  };

  double lo = 0.0;
  double hi = 1.0;
  for (int expand = 0; expand < 60 && constraint_value(hi) > 0.0; ++expand) {
    hi *= 2.0;
  }
  for (int iteration = 0; iteration < 80; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (constraint_value(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = hi;

  // Apply the update at λ.
  std::vector<double> sigma_ones(m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) sigma_ones[i] += sigma_[i][j];
  }
  for (size_t i = 0; i < m; ++i) {
    mu_[i] -= lambda * (sigma_x[i] - x_bar * sigma_ones[i]);
  }
  const double factor = 2.0 * lambda * phi_ / (1.0 + 2.0 * lambda * phi_ * v);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      sigma_[i][j] -= factor * sigma_x[i] * sigma_x[j];
    }
  }
  mu_ = ProjectToSimplex(mu_);
}

std::vector<double> CwmrStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  const auto& history = HistoryUpTo(view.panel, view.period);
  for (; folded_through_ < static_cast<int64_t>(history.size());
       ++folded_through_) {
    Update(history[folded_through_]);
  }
  return WithCash(mu_);
}

// ------------------------------------------------------------- OLMAR ----

OlmarStrategy::OlmarStrategy(int window, double epsilon)
    : window_(window), epsilon_(epsilon) {
  PPN_CHECK_GE(window, 2);
  PPN_CHECK_GE(epsilon, 1.0);
}

void OlmarStrategy::Reset(const market::OhlcPanel& panel,
                          int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  weights_.assign(panel.num_assets(),
                  1.0 / static_cast<double>(panel.num_assets()));
}

std::vector<double> OlmarStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  HistoryUpTo(view.panel, view.period);  // Keeps the no-lookahead contract
                                         // explicit.
  const int64_t m = num_assets();
  const int64_t latest = view.period - 1;  // Last observable period.
  if (latest >= window_) {
    // Predicted relative: MA(window) of close prices divided by the latest
    // close.
    std::vector<double> predicted(m);
    for (int64_t a = 0; a < m; ++a) {
      double moving_average = 0.0;
      for (int w = 0; w < window_; ++w) {
        moving_average += view.panel.Close(latest - w, a);
      }
      moving_average /= window_;
      predicted[a] = moving_average / view.panel.Close(latest, a);
    }
    const double loss = std::max(0.0, epsilon_ - Dot(weights_, predicted));
    if (loss > 0.0) {
      const double denominator = CenteredSquaredNorm(predicted);
      if (denominator > 1e-12) {
        weights_ = PassiveAggressiveStep(weights_, predicted,
                                         loss / denominator);
      }
    }
  }
  return WithCash(weights_);
}

// --------------------------------------------------------------- RMR ----

RmrStrategy::RmrStrategy(int window, double epsilon)
    : window_(window), epsilon_(epsilon) {
  PPN_CHECK_GE(window, 2);
  PPN_CHECK_GE(epsilon, 1.0);
}

void RmrStrategy::Reset(const market::OhlcPanel& panel, int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  weights_.assign(panel.num_assets(),
                  1.0 / static_cast<double>(panel.num_assets()));
}

std::vector<double> RmrStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  HistoryUpTo(view.panel, view.period);
  const int64_t m = num_assets();
  const int64_t latest = view.period - 1;
  if (latest >= window_) {
    std::vector<std::vector<double>> recent_prices;
    recent_prices.reserve(window_);
    for (int w = window_ - 1; w >= 0; --w) {
      std::vector<double> prices(m);
      for (int64_t a = 0; a < m; ++a) {
        prices[a] = view.panel.Close(latest - w, a);
      }
      recent_prices.push_back(std::move(prices));
    }
    const std::vector<double> median = L1Median(recent_prices);
    std::vector<double> predicted(m);
    for (int64_t a = 0; a < m; ++a) {
      predicted[a] = median[a] / view.panel.Close(latest, a);
    }
    const double loss = std::max(0.0, epsilon_ - Dot(weights_, predicted));
    if (loss > 0.0) {
      const double denominator = CenteredSquaredNorm(predicted);
      if (denominator > 1e-12) {
        weights_ = PassiveAggressiveStep(weights_, predicted,
                                         loss / denominator);
      }
    }
  }
  return WithCash(weights_);
}

// ------------------------------------------------------------- WMAMR ----

WmamrStrategy::WmamrStrategy(int window, double epsilon)
    : window_(window), epsilon_(epsilon) {
  PPN_CHECK_GE(window, 1);
  PPN_CHECK_GE(epsilon, 0.0);
}

void WmamrStrategy::Reset(const market::OhlcPanel& panel,
                          int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  weights_.assign(panel.num_assets(),
                  1.0 / static_cast<double>(panel.num_assets()));
  folded_through_ = 0;
}

std::vector<double> WmamrStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  const auto& history = HistoryUpTo(view.panel, view.period);
  const int64_t m = num_assets();
  for (; folded_through_ < static_cast<int64_t>(history.size());
       ++folded_through_) {
    const int64_t upto = folded_through_;  // History index of the newest x.
    if (upto + 1 < window_) continue;
    // Linearly weighted moving average of the last `window_` relatives
    // (most recent weighted highest).
    std::vector<double> smoothed(m, 0.0);
    double weight_total = 0.0;
    for (int w = 0; w < window_; ++w) {
      const double weight = window_ - w;
      weight_total += weight;
      const auto& x = history[upto - w];
      for (int64_t a = 0; a < m; ++a) smoothed[a] += weight * x[a];
    }
    for (double& s : smoothed) s /= weight_total;
    const double loss = std::max(0.0, Dot(weights_, smoothed) - epsilon_);
    if (loss > 0.0) {
      const double denominator = CenteredSquaredNorm(smoothed);
      if (denominator > 1e-12) {
        weights_ = PassiveAggressiveStep(weights_, smoothed,
                                         -loss / denominator);
      }
    }
  }
  return WithCash(weights_);
}

}  // namespace ppn::strategies
