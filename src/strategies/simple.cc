#include "strategies/simple.h"

#include "common/check.h"

namespace ppn::strategies {

void UbahStrategy::Reset(const market::OhlcPanel& panel,
                         int64_t first_period) {
  (void)first_period;
  first_decision_ = true;
  num_assets_ = panel.num_assets();
}

std::vector<double> UbahStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)view;
  if (first_decision_) {
    first_decision_ = false;
    return UniformRiskPortfolio(num_assets_);
  }
  return prev_hat;  // Hold: no rebalancing, ever.
}

void BestStrategy::Reset(const market::OhlcPanel& panel,
                         int64_t first_period) {
  first_decision_ = true;
  num_assets_ = panel.num_assets();
  PPN_CHECK_GE(first_period, 1);
  // Hindsight scan over the evaluated range (oracle by definition).
  best_asset_ = 0;
  double best_return = -1.0;
  for (int64_t a = 0; a < num_assets_; ++a) {
    const double start = panel.Close(first_period - 1, a);
    const double end = panel.Close(panel.num_periods() - 1, a);
    PPN_CHECK_GT(start, 0.0);
    const double total_return = end / start;
    if (total_return > best_return) {
      best_return = total_return;
      best_asset_ = a;
    }
  }
}

std::vector<double> BestStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)view;
  if (first_decision_) {
    first_decision_ = false;
    std::vector<double> portfolio(num_assets_ + 1, 0.0);
    portfolio[best_asset_ + 1] = 1.0;
    return portfolio;
  }
  return prev_hat;  // Buy and hold the hindsight winner.
}

std::vector<double> CrpStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  return UniformRiskPortfolio(view.panel.num_assets());
}

}  // namespace ppn::strategies
