#ifndef PPN_STRATEGIES_REGISTRY_H_
#define PPN_STRATEGIES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "backtest/strategy.h"
#include "common/run_scale.h"
#include "market/dataset.h"
#include "ppn/config.h"
#include "ppn/policy_module.h"

/// \file
/// The unified strategy registry: one factory covering every policy the
/// paper evaluates — the twelve classic OLPS baselines (Tables 3 and 8),
/// the PPN-family neural policies and the EIIE baseline (trained by direct
/// policy gradient), and the PPN-AC actor–critic ablation (trained by
/// DDPG, Table 9). Bench binaries, the experiment runner, and the CLI all
/// construct strategies exclusively through `MakeStrategy`; direct
/// construction of strategy types outside this library is deprecated.

namespace ppn::strategies {

/// Declarative description of one strategy. For classic baselines only
/// `name` matters; the remaining knobs configure neural training.
struct StrategySpec {
  /// Registry key: a classic baseline name ("UBAH" ... "WMAMR"), a neural
  /// variant name ("PPN", "PPN-I", ..., "EIIE"), or "PPN-AC" (the DDPG
  /// ablation).
  std::string name;
  /// Display/grouping label; empty means "use `name`". Grid sweeps that
  /// vary a knob of the same variant (e.g. the γ sweep) must give each
  /// spec a distinct label: the experiment runner keys cells (and derives
  /// their RNG seeds) by label.
  std::string label;

  // --- Neural training knobs (ignored for classic baselines). ------------
  double gamma = 1e-3;        ///< Cost-constraint weight γ of Eq. 1.
  double lambda = 1e-4;       ///< Risk-penalty weight λ of Eq. 1.
  double cost_rate = 0.0025;  ///< ψ in the training reward.
  int64_t base_steps = 400;   ///< Pre-scale training-step budget.
  uint64_t seed = 1;          ///< Root seed of every RNG stream in the run.
  RunScale scale = RunScale::kQuick;  ///< Budget tier (see run_scale.h).

  /// When non-empty AND obs is enabled, training streams one
  /// `obs::RunLogRecord` per step to this JSONL path (see
  /// obs/run_log.h). Telemetry only — never affects training results.
  /// Ignored for classic baselines (nothing trains).
  std::string runlog_path;

  /// The label used in tables and cell keys.
  const std::string& display() const { return label.empty() ? name : label; }

  /// Checks the spec is well-formed: known `name`, γ/λ ≥ 0, ψ ∈ [0, 1),
  /// base_steps > 0. Aborts with a message on violation.
  void Validate() const;
};

/// Names of the twelve classic baselines in the paper's table order:
/// UBAH, Best, CRP, UP, EG, Anticor, ONS, CWMR, PAMR, OLMAR, RMR, WMAMR.
std::vector<std::string> ClassicBaselineNames();

/// Names of the trainable strategies: the seven PPN-family variants, EIIE,
/// and "PPN-AC".
std::vector<std::string> NeuralStrategyNames();

/// Every name `MakeStrategy` accepts (classics then neurals).
std::vector<std::string> AllStrategyNames();

/// True if `name` is one of `ClassicBaselineNames`.
bool IsClassicBaselineName(const std::string& name);

/// True if `name` is one of `NeuralStrategyNames`.
bool IsNeuralStrategyName(const std::string& name);

/// Training budget of one neural run, scaled to the tier and shrunk for
/// large-asset-count datasets (the correlational convolution is O(m²)).
struct TrainBudget {
  int64_t steps = 400;
  int64_t batch_size = 16;
  float learning_rate = 3e-3f;
};

/// Computes the budget for a dataset with `num_assets` assets.
TrainBudget TrainBudgetFor(RunScale scale, int64_t num_assets,
                           int64_t base_steps = 400);

/// Standard policy network config for a dataset (paper Table 2 sizes).
core::PolicyConfig PaperPolicyConfig(core::PolicyVariant variant,
                                     int64_t num_assets, uint64_t seed);

/// Owning handle of a trained neural policy: keeps the module and its
/// dropout RNG alive. Movable; the `policy()` pointer is stable.
class TrainedPolicy {
 public:
  TrainedPolicy(std::unique_ptr<Rng> dropout_rng,
                std::unique_ptr<core::PolicyModule> policy);

  core::PolicyModule* policy() const { return policy_.get(); }

  /// Wraps the policy in an eval-mode backtest strategy. The handle must
  /// outlive the returned strategy.
  std::unique_ptr<backtest::Strategy> MakeEvalStrategy(
      std::string display_name) const;

 private:
  std::unique_ptr<Rng> dropout_rng_;  // Must outlive policy_.
  std::unique_ptr<core::PolicyModule> policy_;
};

/// Trains the neural policy described by `spec` (whose name must be
/// neural) on the dataset's training range. Deterministic in `spec.seed`.
TrainedPolicy TrainPolicy(const StrategySpec& spec,
                          const market::MarketDataset& dataset);

/// The unified factory: builds (and for neural specs, trains) the strategy
/// described by `spec`, ready to backtest on `dataset`. The returned
/// strategy is self-contained — it owns any trained policy. Classic
/// baselines ignore `dataset` at construction.
std::unique_ptr<backtest::Strategy> MakeStrategy(
    const StrategySpec& spec, const market::MarketDataset& dataset);

}  // namespace ppn::strategies

#endif  // PPN_STRATEGIES_REGISTRY_H_
