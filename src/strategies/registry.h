#ifndef PPN_STRATEGIES_REGISTRY_H_
#define PPN_STRATEGIES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "backtest/strategy.h"

/// \file
/// Factory for the classic baselines compared in the paper's Tables 3 and 8.

namespace ppn::strategies {

/// Names of the twelve classic baselines in the paper's table order:
/// UBAH, Best, CRP, UP, EG, Anticor, ONS, CWMR, PAMR, OLMAR, RMR, WMAMR.
std::vector<std::string> ClassicBaselineNames();

/// Creates a baseline by name (one of `ClassicBaselineNames`); checks the
/// name is known.
std::unique_ptr<backtest::Strategy> MakeClassicBaseline(
    const std::string& name);

}  // namespace ppn::strategies

#endif  // PPN_STRATEGIES_REGISTRY_H_
