#include "strategies/registry.h"

#include "common/check.h"
#include "strategies/anticor.h"
#include "strategies/mean_reversion.h"
#include "strategies/simple.h"
#include "strategies/universal.h"

namespace ppn::strategies {

std::vector<std::string> ClassicBaselineNames() {
  return {"UBAH", "Best", "CRP",  "UP",   "EG",    "Anticor",
          "ONS",  "CWMR", "PAMR", "OLMAR", "RMR",  "WMAMR"};
}

std::unique_ptr<backtest::Strategy> MakeClassicBaseline(
    const std::string& name) {
  if (name == "UBAH") return std::make_unique<UbahStrategy>();
  if (name == "Best") return std::make_unique<BestStrategy>();
  if (name == "CRP") return std::make_unique<CrpStrategy>();
  if (name == "UP") return std::make_unique<UpStrategy>();
  if (name == "EG") return std::make_unique<EgStrategy>();
  if (name == "Anticor") return std::make_unique<AnticorStrategy>();
  if (name == "ONS") return std::make_unique<OnsStrategy>();
  if (name == "CWMR") return std::make_unique<CwmrStrategy>();
  if (name == "PAMR") return std::make_unique<PamrStrategy>();
  if (name == "OLMAR") return std::make_unique<OlmarStrategy>();
  if (name == "RMR") return std::make_unique<RmrStrategy>();
  if (name == "WMAMR") return std::make_unique<WmamrStrategy>();
  PPN_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

}  // namespace ppn::strategies
