#include "strategies/registry.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/run_log.h"
#include "ppn/ddpg.h"
#include "ppn/strategy_adapter.h"
#include "ppn/trainer.h"
#include "strategies/anticor.h"
#include "strategies/mean_reversion.h"
#include "strategies/simple.h"
#include "strategies/universal.h"

namespace ppn::strategies {

namespace {

constexpr char kActorCriticName[] = "PPN-AC";

/// Self-contained strategy: owns the trained policy handle and delegates to
/// the eval-mode adapter, so `MakeStrategy` callers need no extra lifetime
/// management.
class OwningPolicyStrategy : public backtest::Strategy {
 public:
  OwningPolicyStrategy(TrainedPolicy trained, std::string display_name)
      : trained_(std::move(trained)),
        inner_(trained_.MakeEvalStrategy(std::move(display_name))) {}

  std::string name() const override { return inner_->name(); }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override {
    inner_->Reset(panel, first_period);
  }
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override {
    return inner_->DecideWeights(view, prev_hat);
  }

 private:
  TrainedPolicy trained_;
  std::unique_ptr<backtest::Strategy> inner_;
};

/// Opens the per-step telemetry stream for a training run when the spec
/// asks for one. Null (and silently so) when the spec has no runlog path,
/// obs is disabled, or the path cannot be opened — training must never
/// fail because telemetry could not attach.
std::unique_ptr<obs::RunLog> OpenRunLog(const StrategySpec& spec,
                                        const market::MarketDataset& dataset,
                                        int64_t trainer_seed,
                                        int64_t trainer_steps) {
  if (spec.runlog_path.empty()) return nullptr;
  obs::RunLogMeta meta;
  meta.run_id = spec.display();
  meta.strategy = spec.name;
  meta.dataset = dataset.name;
  meta.gamma = spec.gamma;
  meta.lambda = spec.lambda;
  meta.cost_rate = spec.cost_rate;
  meta.seed = trainer_seed;
  meta.steps = trainer_steps;
  return obs::RunLog::Open(spec.runlog_path, meta);
}

std::unique_ptr<backtest::Strategy> MakeClassic(const std::string& name) {
  if (name == "UBAH") return std::make_unique<UbahStrategy>();
  if (name == "Best") return std::make_unique<BestStrategy>();
  if (name == "CRP") return std::make_unique<CrpStrategy>();
  if (name == "UP") return std::make_unique<UpStrategy>();
  if (name == "EG") return std::make_unique<EgStrategy>();
  if (name == "Anticor") return std::make_unique<AnticorStrategy>();
  if (name == "ONS") return std::make_unique<OnsStrategy>();
  if (name == "CWMR") return std::make_unique<CwmrStrategy>();
  if (name == "PAMR") return std::make_unique<PamrStrategy>();
  if (name == "OLMAR") return std::make_unique<OlmarStrategy>();
  if (name == "RMR") return std::make_unique<RmrStrategy>();
  if (name == "WMAMR") return std::make_unique<WmamrStrategy>();
  PPN_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

/// Policy-gradient training (PPN variants and EIIE), matching the
/// harness's historical seeding so runs stay reproducible.
TrainedPolicy TrainPolicyGradient(const StrategySpec& spec,
                                  const market::MarketDataset& dataset,
                                  core::PolicyVariant variant) {
  const int64_t m = dataset.panel.num_assets();
  const TrainBudget budget = TrainBudgetFor(spec.scale, m, spec.base_steps);
  Rng init(spec.seed * 7919 + 13);
  auto dropout = std::make_unique<Rng>(spec.seed * 104729 + 17);
  auto policy = core::MakePolicy(PaperPolicyConfig(variant, m, spec.seed),
                                 &init, dropout.get());
  core::TrainerConfig tc;
  tc.batch_size = budget.batch_size;
  tc.steps = budget.steps;
  tc.learning_rate = budget.learning_rate;
  tc.seed = spec.seed * 31 + 7;
  tc.weight_decay = 1e-3f;  // AdamW decay; calibrated for short budgets.
  tc.reward.gamma = spec.gamma;
  tc.reward.lambda = spec.lambda;
  tc.reward.cost_rate = spec.cost_rate;
  // EIIE optimizes the plain rebalanced log-return: its cost factor is a
  // stop-gradient constant (Jiang et al. 2017), unlike the cost-sensitive
  // reward's differentiable cost + explicit L1 constraint.
  tc.reward.differentiable_cost = variant != core::PolicyVariant::kEiie;
  core::PolicyGradientTrainer trainer(policy.get(), dataset, tc);
  std::unique_ptr<obs::RunLog> run_log =
      OpenRunLog(spec, dataset, static_cast<int64_t>(tc.seed), tc.steps);
  if (run_log != nullptr) trainer.AttachRunLog(run_log.get());
  trainer.Train();
  if (run_log != nullptr) run_log->Close();
  return TrainedPolicy(std::move(dropout), std::move(policy));
}

/// DDPG training of a PPN actor (the paper's Table-9 PPN-AC ablation).
TrainedPolicy TrainActorCritic(const StrategySpec& spec,
                               const market::MarketDataset& dataset) {
  const int64_t m = dataset.panel.num_assets();
  Rng init(spec.seed * 1021 + 3);
  auto dropout = std::make_unique<Rng>(spec.seed * 1022 + 7);
  auto actor = core::MakePolicy(
      PaperPolicyConfig(core::PolicyVariant::kPpn, m, spec.seed * 77 + 11),
      &init, dropout.get());
  core::DdpgConfig config;
  config.steps = TrainBudgetFor(spec.scale, m, spec.base_steps).steps;
  config.batch_size = 16;
  config.cost_rate = spec.cost_rate;
  config.seed = spec.seed * 5 + 1;
  core::DdpgTrainer trainer(actor.get(), dataset, config);
  std::unique_ptr<obs::RunLog> run_log = OpenRunLog(
      spec, dataset, static_cast<int64_t>(config.seed), config.steps);
  if (run_log != nullptr) trainer.AttachRunLog(run_log.get());
  trainer.Train();
  if (run_log != nullptr) run_log->Close();
  return TrainedPolicy(std::move(dropout), std::move(actor));
}

}  // namespace

std::vector<std::string> ClassicBaselineNames() {
  return {"UBAH", "Best", "CRP",  "UP",   "EG",    "Anticor",
          "ONS",  "CWMR", "PAMR", "OLMAR", "RMR",  "WMAMR"};
}

std::vector<std::string> NeuralStrategyNames() {
  std::vector<std::string> names;
  for (const core::PolicyVariant variant : core::Table4Variants()) {
    names.push_back(core::VariantName(variant));
  }
  names.push_back(core::VariantName(core::PolicyVariant::kEiie));
  names.push_back(kActorCriticName);
  return names;
}

std::vector<std::string> AllStrategyNames() {
  std::vector<std::string> names = ClassicBaselineNames();
  const std::vector<std::string> neural = NeuralStrategyNames();
  names.insert(names.end(), neural.begin(), neural.end());
  return names;
}

bool IsClassicBaselineName(const std::string& name) {
  const std::vector<std::string> names = ClassicBaselineNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

bool IsNeuralStrategyName(const std::string& name) {
  if (name == kActorCriticName) return true;
  core::PolicyVariant variant;
  return core::VariantFromName(name, &variant);
}

void StrategySpec::Validate() const {
  PPN_CHECK(IsClassicBaselineName(name) || IsNeuralStrategyName(name))
      << "unknown strategy: " << name;
  PPN_CHECK_GE(gamma, 0.0);
  PPN_CHECK_GE(lambda, 0.0);
  PPN_CHECK(cost_rate >= 0.0 && cost_rate < 1.0)
      << "cost_rate out of [0, 1): " << cost_rate;
  PPN_CHECK_GT(base_steps, 0);
}

TrainBudget TrainBudgetFor(RunScale scale, int64_t num_assets,
                           int64_t base_steps) {
  TrainBudget budget;
  budget.steps = ScaledSteps(static_cast<int>(base_steps), scale,
                             /*full_multiplier=*/50);
  // The correlational conv costs O(m²): shrink the step budget for wide
  // panels so every dataset costs roughly the same wall-clock.
  if (num_assets > 12) {
    budget.steps = std::max<int64_t>(
        80, budget.steps * 12 / num_assets);
  }
  if (scale == RunScale::kFull) {
    budget.batch_size = 32;
    budget.learning_rate = 1e-3f;  // The paper's setting.
  }
  return budget;
}

core::PolicyConfig PaperPolicyConfig(core::PolicyVariant variant,
                                     int64_t num_assets, uint64_t seed) {
  core::PolicyConfig config;
  config.variant = variant;
  config.num_assets = num_assets;
  config.window = 30;
  config.lstm_hidden = 16;
  config.block1_channels = 8;
  config.block2_channels = 16;
  // The paper uses dropout 0.2 over 1e5 training steps; at the harness's
  // reduced step budgets 0.1 reaches comparable regularization without
  // drowning the gradient signal (see EXPERIMENTS.md).
  config.dropout = 0.1f;
  config.seed = seed;
  return config;
}

TrainedPolicy::TrainedPolicy(std::unique_ptr<Rng> dropout_rng,
                             std::unique_ptr<core::PolicyModule> policy)
    : dropout_rng_(std::move(dropout_rng)), policy_(std::move(policy)) {
  PPN_CHECK(policy_ != nullptr);
}

std::unique_ptr<backtest::Strategy> TrainedPolicy::MakeEvalStrategy(
    std::string display_name) const {
  return std::make_unique<core::PolicyStrategy>(policy_.get(),
                                                std::move(display_name));
}

TrainedPolicy TrainPolicy(const StrategySpec& spec,
                          const market::MarketDataset& dataset) {
  spec.Validate();
  PPN_CHECK(IsNeuralStrategyName(spec.name))
      << "TrainPolicy needs a neural strategy, got: " << spec.name;
  if (spec.name == kActorCriticName) {
    return TrainActorCritic(spec, dataset);
  }
  core::PolicyVariant variant;
  PPN_CHECK(core::VariantFromName(spec.name, &variant));
  return TrainPolicyGradient(spec, dataset, variant);
}

std::unique_ptr<backtest::Strategy> MakeStrategy(
    const StrategySpec& spec, const market::MarketDataset& dataset) {
  spec.Validate();
  if (IsClassicBaselineName(spec.name)) {
    return MakeClassic(spec.name);
  }
  return std::make_unique<OwningPolicyStrategy>(TrainPolicy(spec, dataset),
                                                spec.display());
}

}  // namespace ppn::strategies
