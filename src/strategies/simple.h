#ifndef PPN_STRATEGIES_SIMPLE_H_
#define PPN_STRATEGIES_SIMPLE_H_

#include "strategies/common.h"

/// \file
/// Benchmark strategies that need no learning: uniform buy-and-hold, the
/// best single asset in hindsight, and the uniform constant-rebalanced
/// portfolio.

namespace ppn::strategies {

/// UBAH: buys the uniform risk portfolio once and never trades again (the
/// chosen portfolio is always the drifted previous one).
class UbahStrategy : public backtest::Strategy {
 public:
  std::string name() const override { return "UBAH"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  bool first_decision_ = true;
  int64_t num_assets_ = 0;
};

/// Best: all-in on the single asset with the highest cumulative return over
/// the evaluated range. This is a HINDSIGHT ORACLE — it reads future prices
/// at Reset time by design (the paper's "best strategy in hindsight").
class BestStrategy : public backtest::Strategy {
 public:
  std::string name() const override { return "Best"; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  int64_t best_asset_ = 0;  // Risk-asset index.
  bool first_decision_ = true;
  int64_t num_assets_ = 0;
};

/// CRP: rebalances to the uniform risk portfolio every period
/// (Cover's 1/m constant-rebalanced portfolio).
class CrpStrategy : public backtest::Strategy {
 public:
  std::string name() const override { return "CRP"; }
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;
};

}  // namespace ppn::strategies

#endif  // PPN_STRATEGIES_SIMPLE_H_
