#include "strategies/anticor.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace ppn::strategies {

AnticorStrategy::AnticorStrategy(int window) : window_(window) {
  PPN_CHECK_GE(window, 2);
}

void AnticorStrategy::Reset(const market::OhlcPanel& panel,
                            int64_t first_period) {
  RelativeTrackingStrategy::Reset(panel, first_period);
  weights_.assign(panel.num_assets(),
                  1.0 / static_cast<double>(panel.num_assets()));
  folded_through_ = 0;
}

std::vector<double> AnticorStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;
  const auto& history = HistoryUpTo(view.panel, view.period);
  const int64_t m = num_assets();
  const int w = window_;

  // Process each newly available period; an update fires whenever two full
  // consecutive windows of log relatives are available.
  for (; folded_through_ < static_cast<int64_t>(history.size());
       ++folded_through_) {
    const int64_t t = folded_through_ + 1;  // Period index of history entry.
    if (t < 2 * w) continue;
    // Window 1: periods (t-2w, t-w]; window 2: (t-w, t].
    // history[s-1] is x_s, so window 2 rows are history[t-w .. t-1].
    std::vector<std::vector<double>> y1(w, std::vector<double>(m));
    std::vector<std::vector<double>> y2(w, std::vector<double>(m));
    for (int r = 0; r < w; ++r) {
      for (int64_t a = 0; a < m; ++a) {
        y1[r][a] = std::log(history[t - 2 * w + r][a]);
        y2[r][a] = std::log(history[t - w + r][a]);
      }
    }
    std::vector<double> mu1(m, 0.0);
    std::vector<double> mu2(m, 0.0);
    std::vector<double> sigma1(m, 0.0);
    std::vector<double> sigma2(m, 0.0);
    for (int64_t a = 0; a < m; ++a) {
      for (int r = 0; r < w; ++r) {
        mu1[a] += y1[r][a];
        mu2[a] += y2[r][a];
      }
      mu1[a] /= w;
      mu2[a] /= w;
      for (int r = 0; r < w; ++r) {
        sigma1[a] += (y1[r][a] - mu1[a]) * (y1[r][a] - mu1[a]);
        sigma2[a] += (y2[r][a] - mu2[a]) * (y2[r][a] - mu2[a]);
      }
      sigma1[a] = std::sqrt(sigma1[a] / (w - 1));
      sigma2[a] = std::sqrt(sigma2[a] / (w - 1));
    }
    // Cross-correlation between asset i in window 1 and asset j in window 2.
    auto correlation = [&](int64_t i, int64_t j) {
      if (sigma1[i] <= 1e-12 || sigma2[j] <= 1e-12) return 0.0;
      double covariance = 0.0;
      for (int r = 0; r < w; ++r) {
        covariance += (y1[r][i] - mu1[i]) * (y2[r][j] - mu2[j]);
      }
      covariance /= (w - 1);
      return covariance / (sigma1[i] * sigma2[j]);
    };
    // Claims: move weight i -> j when asset i outperformed j in window 2
    // and their cross-correlation is positive.
    std::vector<std::vector<double>> claim(m, std::vector<double>(m, 0.0));
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        if (i == j || mu2[i] <= mu2[j]) continue;
        const double m_cor = correlation(i, j);
        if (m_cor <= 0.0) continue;
        double c = m_cor;
        const double self_i = correlation(i, i);
        const double self_j = correlation(j, j);
        if (self_i < 0.0) c -= self_i;
        if (self_j < 0.0) c -= self_j;
        claim[i][j] = c;
      }
    }
    for (int64_t i = 0; i < m; ++i) {
      double claim_sum = 0.0;
      for (int64_t j = 0; j < m; ++j) claim_sum += claim[i][j];
      if (claim_sum <= 0.0) continue;
      for (int64_t j = 0; j < m; ++j) {
        claim[i][j] = weights_[i] * claim[i][j] / claim_sum;
      }
    }
    std::vector<double> next = weights_;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        next[i] -= claim[i][j];
        next[j] += claim[i][j];
      }
    }
    weights_ = ProjectToSimplex(next);
  }
  return WithCash(weights_);
}

}  // namespace ppn::strategies
