#ifndef PPN_COMMON_PARSE_H_
#define PPN_COMMON_PARSE_H_

#include <cstdint>
#include <optional>
#include <string_view>

/// \file
/// Strict numeric parsing. The std::atoi/atof family silently maps
/// malformed input to 0, which turned typos like `PPN_WORKERS=abc` or
/// `--costs 0.0025,O.01` into silent behaviour changes (serial runs,
/// zero-cost sweeps). These helpers accept a value only when the WHOLE
/// string parses; the `Or`-suffixed variants return nullopt on failure
/// and the plain variants abort with a message naming the offending
/// input and its source (flag or env var).

namespace ppn {

/// Parses the entire string as a base-10 integer / double. Leading and
/// trailing whitespace is rejected; so are partial parses ("12x"),
/// empty strings, and (for ints) overflow.
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

/// Aborting variants: `context` names where the value came from, e.g.
/// "--costs" or "PPN_WORKERS", and appears in the failure message.
int64_t ParseInt64OrDie(std::string_view text, std::string_view context);
double ParseDoubleOrDie(std::string_view text, std::string_view context);

}  // namespace ppn

#endif  // PPN_COMMON_PARSE_H_
