#ifndef PPN_COMMON_TABLE_PRINTER_H_
#define PPN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

/// \file
/// ASCII table formatting used by the bench harness to print rows in the
/// same layout as the paper's tables.

namespace ppn {

/// Accumulates rows of strings and renders them with aligned columns.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: first cell is a label, the rest are numbers formatted with
  /// `precision` significant digits (or scientific for tiny magnitudes).
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders the table with a header separator.
  std::string ToString() const;

  /// Formats a double the way the paper does: fixed with `precision`
  /// decimals, switching to scientific for |x| < 1e-3 and x != 0.
  static std::string FormatCell(double value, int precision);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppn

#endif  // PPN_COMMON_TABLE_PRINTER_H_
