#include "common/table_printer.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace ppn {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PPN_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PPN_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(FormatCell(v, precision));
  AddRow(std::move(row));
}

std::string TablePrinter::FormatCell(double value, int precision) {
  char buffer[64];
  if (value != 0.0 && std::fabs(value) < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.0e", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  }
  return buffer;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << " |\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) out << '-';
    out << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace ppn
