#ifndef PPN_COMMON_MATH_UTILS_H_
#define PPN_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

/// \file
/// Small numeric helpers shared across the library: simplex geometry,
/// norms, and descriptive statistics on `std::vector<double>` series.

namespace ppn {

/// Euclidean projection of `v` onto the probability simplex
/// {x : x_i >= 0, sum x_i = 1} (Duchi et al. 2008, O(n log n)).
std::vector<double> ProjectToSimplex(const std::vector<double>& v);

/// Returns true iff `v` has no negative entry (within `tolerance`) and its
/// entries sum to 1 within `tolerance`.
bool IsOnSimplex(const std::vector<double>& v, double tolerance = 1e-6);

/// L1 norm, sum_i |v_i|.
double L1Norm(const std::vector<double>& v);

/// L1 distance, sum_i |a_i - b_i|. Requires equal sizes.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Dot product. Requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Arithmetic mean. Requires a non-empty input.
double Mean(const std::vector<double>& v);

/// Population variance (divides by N). Requires a non-empty input.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

/// Softmax of a vector (numerically stable).
std::vector<double> Softmax(const std::vector<double>& logits);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Pearson correlation of two equally sized series; returns 0 when either
/// side has zero variance.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace ppn

#endif  // PPN_COMMON_MATH_UTILS_H_
