#ifndef PPN_COMMON_RANDOM_H_
#define PPN_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

/// \file
/// Deterministic, seedable random number generation. Every stochastic
/// component in the library (market generator, weight init, dropout, batch
/// sampling, exploration noise) draws from an explicitly passed `Rng`, so a
/// fixed seed reproduces an entire experiment bit-for-bit.

namespace ppn {

/// xoshiro256** PRNG with a SplitMix64 seeding stage. Small, fast and of
/// good statistical quality; not cryptographic.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal via Box–Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Gamma(shape, 1) via Marsaglia–Tsang; supports shape < 1.
  double Gamma(double shape);

  /// Exponential with the given rate (rate > 0).
  double Exponential(double rate);

  /// Bernoulli with probability p of returning true.
  bool Bernoulli(double p);

  /// Sample from Dirichlet(alpha, ..., alpha) of the given dimension;
  /// the result sums to 1.
  std::vector<double> Dirichlet(int dimension, double alpha);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<int64_t> Permutation(int64_t n);

  /// Splits off an independently seeded child generator. Children derived
  /// with distinct tags have decorrelated streams.
  Rng Split(uint64_t tag);

  /// Complete generator state, exposed for checkpointing: the four
  /// xoshiro256** words plus the cached Box–Muller spare. Restoring it
  /// with `SetState` resumes the stream exactly where it was captured.
  struct State {
    uint64_t words[4] = {0, 0, 0, 0};
    double spare_normal = 0.0;
    bool has_spare_normal = false;
  };

  State GetState() const;
  void SetState(const State& state);

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace ppn

#endif  // PPN_COMMON_RANDOM_H_
