#include "common/parse.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ppn {

std::optional<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  int64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

namespace {

[[noreturn]] void DieOnBadNumber(std::string_view text,
                                 std::string_view context,
                                 const char* expected) {
  std::fprintf(stderr, "ppn: invalid %s for %s: \"%s\"\n", expected,
               std::string(context).c_str(), std::string(text).c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

int64_t ParseInt64OrDie(std::string_view text, std::string_view context) {
  const std::optional<int64_t> value = ParseInt64(text);
  if (!value.has_value()) DieOnBadNumber(text, context, "integer");
  return *value;
}

double ParseDoubleOrDie(std::string_view text, std::string_view context) {
  const std::optional<double> value = ParseDouble(text);
  if (!value.has_value()) DieOnBadNumber(text, context, "number");
  return *value;
}

}  // namespace ppn
