#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace ppn {

std::vector<double> ProjectToSimplex(const std::vector<double>& v) {
  PPN_CHECK(!v.empty());
  const size_t n = v.size();
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double theta = 0.0;
  int rho = 0;
  for (size_t i = 0; i < n; ++i) {
    cumulative += sorted[i];
    const double candidate = (cumulative - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      rho = static_cast<int>(i + 1);
      theta = candidate;
    }
  }
  PPN_CHECK_GT(rho, 0);
  std::vector<double> projection(n);
  for (size_t i = 0; i < n; ++i) {
    projection[i] = std::max(v[i] - theta, 0.0);
  }
  return projection;
}

bool IsOnSimplex(const std::vector<double>& v, double tolerance) {
  double total = 0.0;
  for (const double x : v) {
    if (x < -tolerance) return false;
    total += x;
  }
  return std::fabs(total - 1.0) <= tolerance;
}

double L1Norm(const std::vector<double>& v) {
  double total = 0.0;
  for (const double x : v) total += std::fabs(x);
  return total;
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  PPN_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return total;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  PPN_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double Mean(const std::vector<double>& v) {
  PPN_CHECK(!v.empty());
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  const double mean = Mean(v);
  double total = 0.0;
  for (const double x : v) total += (x - mean) * (x - mean);
  return total / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

std::vector<double> Softmax(const std::vector<double>& logits) {
  PPN_CHECK(!logits.empty());
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double total = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

double Clamp(double x, double lo, double hi) {
  PPN_CHECK_LE(lo, hi);
  return std::min(std::max(x, lo), hi);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  PPN_CHECK_EQ(a.size(), b.size());
  PPN_CHECK(!a.empty());
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace ppn
