#ifndef PPN_COMMON_ENV_H_
#define PPN_COMMON_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Typed access to the `PPN_*` environment knobs. Every knob the binary
/// reads is declared once in the registry in env.cc, so `ppn_cli help-env`
/// can enumerate them and a typo'd name aborts instead of silently reading
/// nothing. Numeric accessors parse strictly via common/parse.h: an unset
/// variable yields the fallback, but a set-and-malformed value (including
/// the empty string) aborts with a message naming the variable.
///
/// This is the only translation unit that may call `std::getenv` for a
/// `PPN_*` name; everything else goes through these accessors.

namespace ppn::env {

/// One registered knob, for `ppn_cli help-env`.
struct VarInfo {
  const char* name;         ///< e.g. "PPN_WORKERS"
  const char* kind;         ///< human-readable type: "int", "flag", "path"...
  const char* fallback;     ///< printed default when unset
  const char* description;  ///< one-line summary
};

/// Every knob, in declaration order. Stable across calls.
const std::vector<VarInfo>& Registry();

/// Raw value of a registered knob, or nullptr when unset. Aborts if `name`
/// is not in the registry (catches typos and undeclared knobs).
const char* Raw(const char* name);

/// True when the knob is set at all, even to the empty string.
bool IsSet(const char* name);

/// True when the knob is set to a non-empty string.
bool HasValue(const char* name);

/// Boolean knob convention shared by PPN_OBS / PPN_NO_POOL: true when set,
/// non-empty, and not exactly "0".
bool FlagSet(const char* name);

/// Returns `fallback` when the knob is unset; otherwise strict-parses the
/// value (ParseInt64OrDie / ParseDoubleOrDie with the variable name as
/// context). A set-but-empty or malformed value aborts.
int64_t Int64Or(const char* name, int64_t fallback);
double DoubleOr(const char* name, double fallback);

/// Returns the value when set and non-empty, else `fallback`.
std::string StringOr(const char* name, const std::string& fallback);

}  // namespace ppn::env

#endif  // PPN_COMMON_ENV_H_
