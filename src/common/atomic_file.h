#ifndef PPN_COMMON_ATOMIC_FILE_H_
#define PPN_COMMON_ATOMIC_FILE_H_

#include <fstream>
#include <string>

/// \file
/// Crash-safe file writing: every persistence path in the library (CSV
/// tables, text weight dumps, binary checkpoints) streams into a temporary
/// sibling file and atomically renames it over the target on `Commit`. A
/// crash or error mid-write therefore never leaves a truncated file at the
/// target path — readers see either the previous complete file or the new
/// complete file, never a prefix of one.

namespace ppn {

/// Writes `path` via `path + ".tmp"` and a final rename. Single-writer per
/// target path: two concurrent writers to the SAME path would share the
/// temporary (distinct paths, e.g. per-cell checkpoints, are safe).
class AtomicFileWriter {
 public:
  /// Opens the temporary file for binary writing. Check `ok()` before use.
  explicit AtomicFileWriter(std::string path);

  /// Removes the temporary file if `Commit` was never reached (the target
  /// is left untouched).
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stream to write through. Valid until `Commit`.
  std::ofstream& stream() { return out_; }

  /// True while the temporary opened and every write so far succeeded.
  bool ok() const { return out_.good(); }

  /// Flushes, closes, fsyncs, and renames the temporary over the target
  /// (data is durable BEFORE the name flips — a crash right after Commit
  /// cannot surface the target with truncated content). Returns false
  /// (and removes the temporary) if any write, the close, the fsync, or
  /// the rename failed. Must be called at most once.
  bool Commit();

  /// The final target path.
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

}  // namespace ppn

#endif  // PPN_COMMON_ATOMIC_FILE_H_
