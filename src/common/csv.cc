#include "common/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ppn {

bool WriteCsv(const std::string& path, const CsvTable& table) {
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) return false;
  }
  std::ofstream out(path);
  if (!out) return false;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out << ",";
    out << table.header[i];
  }
  out << "\n";
  out.precision(12);
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << row[i];
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

bool ReadCsv(const std::string& path, CsvTable* table) {
  table->header.clear();
  table->rows.clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table->header.push_back(cell);
  }
  if (table->header.empty()) return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        table->header.clear();
        table->rows.clear();
        return false;
      }
      row.push_back(value);
    }
    if (row.size() != table->header.size()) {
      table->header.clear();
      table->rows.clear();
      return false;
    }
    table->rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace ppn
