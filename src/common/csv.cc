#include "common/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"

namespace ppn {

namespace {

/// Parses one CSV cell as a double, requiring the whole cell (modulo
/// surrounding whitespace, including a trailing '\r' from CRLF files) to
/// be consumed: "1.5abc" or "1.5 2.5" is a malformed cell, not 1.5.
bool ParseCell(const std::string& cell, double* value) {
  size_t begin = 0;
  size_t end = cell.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(cell[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(cell[end - 1]))) {
    --end;
  }
  if (begin == end) return false;
  const std::string trimmed = cell.substr(begin, end - begin);
  char* parse_end = nullptr;
  *value = std::strtod(trimmed.c_str(), &parse_end);
  return parse_end == trimmed.c_str() + trimmed.size();
}

}  // namespace

bool WriteCsv(const std::string& path, const CsvTable& table) {
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) return false;
  }
  // Temp-then-rename: a crash mid-write never leaves a truncated CSV where
  // a previous complete one existed.
  AtomicFileWriter file(path);
  if (!file.ok()) return false;
  std::ostream& out = file.stream();
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out << ",";
    out << table.header[i];
  }
  out << "\n";
  out.precision(12);
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << row[i];
    }
    out << "\n";
  }
  return file.Commit();
}

bool ReadCsv(const std::string& path, CsvTable* table) {
  table->header.clear();
  table->rows.clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table->header.push_back(cell);
  }
  if (table->header.empty()) return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      double value = 0.0;
      if (!ParseCell(cell, &value)) {
        table->header.clear();
        table->rows.clear();
        return false;
      }
      row.push_back(value);
    }
    if (row.size() != table->header.size()) {
      table->header.clear();
      table->rows.clear();
      return false;
    }
    table->rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace ppn
