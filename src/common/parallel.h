#ifndef PPN_COMMON_PARALLEL_H_
#define PPN_COMMON_PARALLEL_H_

/// \file
/// Coordination between the two layers of parallelism in the library:
/// coarse-grained experiment cells run on `exec::ThreadPool` workers, and
/// fine-grained OpenMP loops inside the tensor/nn kernels. Nesting both
/// oversubscribes the machine (every pool worker would spawn its own OpenMP
/// team), so pool workers that saturate the hardware disable the inner
/// OpenMP path through the thread-local flag defined here.
///
/// The flag only gates WHETHER a kernel loop runs on an OpenMP team; every
/// kernel computes each output element with the same per-element operation
/// order either way, so results are bit-identical with the flag on or off.

namespace ppn {

/// True when the calling thread may use OpenMP inside tensor/nn kernels.
/// Defaults to true on every thread.
bool InnerParallelEnabled();

/// Sets the calling thread's inner-parallelism flag; returns the previous
/// value. Used by `exec::ThreadPool` workers.
bool SetInnerParallelEnabled(bool enabled);

/// RAII scope that disables inner parallelism on the current thread.
class ScopedInnerParallelDisable {
 public:
  ScopedInnerParallelDisable() : previous_(SetInnerParallelEnabled(false)) {}
  ~ScopedInnerParallelDisable() { SetInnerParallelEnabled(previous_); }

  ScopedInnerParallelDisable(const ScopedInnerParallelDisable&) = delete;
  ScopedInnerParallelDisable& operator=(const ScopedInnerParallelDisable&) =
      delete;

 private:
  bool previous_;
};

/// Number of hardware threads (>= 1); `std::thread::hardware_concurrency`
/// with a floor of 1.
int HardwareThreads();

}  // namespace ppn

#endif  // PPN_COMMON_PARALLEL_H_
