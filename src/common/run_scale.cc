#include "common/run_scale.h"

#include <cstdlib>
#include <cstring>

namespace ppn {

RunScale GetRunScale() {
  const char* value = std::getenv("PPN_SCALE");
  if (value == nullptr) return RunScale::kQuick;
  if (std::strcmp(value, "full") == 0) return RunScale::kFull;
  if (std::strcmp(value, "smoke") == 0) return RunScale::kSmoke;
  return RunScale::kQuick;
}

int ScaledSteps(int base, RunScale scale, int full_multiplier) {
  switch (scale) {
    case RunScale::kSmoke:
      return base / 8 > 0 ? base / 8 : 1;
    case RunScale::kQuick:
      return base;
    case RunScale::kFull:
      return base * full_multiplier;
  }
  return base;
}

const char* RunScaleName(RunScale scale) {
  switch (scale) {
    case RunScale::kSmoke:
      return "smoke";
    case RunScale::kQuick:
      return "quick";
    case RunScale::kFull:
      return "full";
  }
  return "quick";
}

}  // namespace ppn
