#include "common/run_scale.h"

#include <string>

#include "common/env.h"

namespace ppn {

RunScale GetRunScale() {
  const std::string value = env::StringOr("PPN_SCALE", "quick");
  if (value == "full") return RunScale::kFull;
  if (value == "smoke") return RunScale::kSmoke;
  return RunScale::kQuick;
}

int ScaledSteps(int base, RunScale scale, int full_multiplier) {
  switch (scale) {
    case RunScale::kSmoke:
      return base / 8 > 0 ? base / 8 : 1;
    case RunScale::kQuick:
      return base;
    case RunScale::kFull:
      return base * full_multiplier;
  }
  return base;
}

const char* RunScaleName(RunScale scale) {
  switch (scale) {
    case RunScale::kSmoke:
      return "smoke";
    case RunScale::kQuick:
      return "quick";
    case RunScale::kFull:
      return "full";
  }
  return "quick";
}

}  // namespace ppn
