#ifndef PPN_COMMON_CHECK_H_
#define PPN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file
/// Contract-checking macros. The library does not use exceptions; a failed
/// check prints the failing condition plus an optional streamed message and
/// aborts. `PPN_DCHECK` compiles out of release builds (`NDEBUG`).

namespace ppn::internal_check {

/// Sink that collects a streamed message and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "PPN_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace ppn::internal_check

#define PPN_CHECK(condition)                                             \
  if (condition) {                                                       \
  } else /* NOLINT */                                                    \
    ::ppn::internal_check::CheckFailure(__FILE__, __LINE__, #condition)

#define PPN_CHECK_EQ(a, b) PPN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define PPN_CHECK_NE(a, b) PPN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define PPN_CHECK_LT(a, b) PPN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define PPN_CHECK_LE(a, b) PPN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define PPN_CHECK_GT(a, b) PPN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define PPN_CHECK_GE(a, b) PPN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#ifdef NDEBUG
#define PPN_DCHECK(condition) \
  if (true) {                 \
  } else /* NOLINT */         \
    ::ppn::internal_check::CheckFailure(__FILE__, __LINE__, #condition)
#else
#define PPN_DCHECK(condition) PPN_CHECK(condition)
#endif

#endif  // PPN_COMMON_CHECK_H_
