#include "common/parallel.h"

#include <thread>

namespace ppn {

namespace {
thread_local bool inner_parallel_enabled = true;
}  // namespace

bool InnerParallelEnabled() { return inner_parallel_enabled; }

bool SetInnerParallelEnabled(bool enabled) {
  const bool previous = inner_parallel_enabled;
  inner_parallel_enabled = enabled;
  return previous;
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace ppn
