#ifndef PPN_COMMON_CSV_H_
#define PPN_COMMON_CSV_H_

#include <string>
#include <vector>

/// \file
/// Minimal CSV reading/writing for numeric tables. Used to persist generated
/// market datasets and bench results so experiments can be replayed and
/// plotted externally.

namespace ppn {

/// A numeric table: a header row plus rows of doubles (all rows the same
/// width as the header).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Writes `table` to `path`. Returns false on IO failure or if any row's
/// width differs from the header's.
bool WriteCsv(const std::string& path, const CsvTable& table);

/// Reads a numeric CSV written by `WriteCsv` (first line header, remaining
/// lines doubles). Returns false on IO/parse failure; on failure `*table`
/// is left empty.
bool ReadCsv(const std::string& path, CsvTable* table);

}  // namespace ppn

#endif  // PPN_COMMON_CSV_H_
