#include "common/atomic_file.h"

#include <cstdio>

namespace ppn {

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    if (out_.is_open()) out_.close();
    std::remove(temp_path_.c_str());
  }
}

bool AtomicFileWriter::Commit() {
  if (committed_) return false;
  committed_ = true;  // The destructor must not remove after a rename.
  if (!out_.is_open() || !out_.good()) {
    if (out_.is_open()) out_.close();
    std::remove(temp_path_.c_str());
    return false;
  }
  out_.flush();
  const bool flushed = out_.good();
  out_.close();
  if (!flushed) {
    std::remove(temp_path_.c_str());
    return false;
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    return false;
  }
  return true;
}

}  // namespace ppn
