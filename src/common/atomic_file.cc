#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

namespace ppn {

namespace {

/// fsync's `path` via a short-lived descriptor. Returns false when the
/// file cannot be opened or the kernel reports a sync failure.
bool SyncPath(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    if (out_.is_open()) out_.close();
    std::remove(temp_path_.c_str());
  }
}

bool AtomicFileWriter::Commit() {
  if (committed_) return false;
  committed_ = true;  // The destructor must not remove after a rename.
  if (!out_.is_open() || !out_.good()) {
    if (out_.is_open()) out_.close();
    std::remove(temp_path_.c_str());
    return false;
  }
  out_.flush();
  const bool flushed = out_.good();
  out_.close();
  if (!flushed) {
    std::remove(temp_path_.c_str());
    return false;
  }
  // fsync the temp file's DATA before the rename publishes its NAME. A
  // rename alone orders nothing: after a crash shortly after Commit, some
  // filesystems (notably ext4 without auto_da_alloc heuristics) would
  // surface the new name with zero-length content — exactly the
  // truncated-checkpoint state this class exists to rule out, and the
  // durability the fabric's elastic worker restart leans on.
  if (!SyncPath(temp_path_.c_str())) {
    std::remove(temp_path_.c_str());
    return false;
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    return false;
  }
  // Best-effort directory sync so the rename itself is durable too. Not a
  // commit-failure condition: the file content is already safe, and some
  // filesystems refuse directory fsync.
  const std::string dir =
      std::filesystem::path(path_).parent_path().string();
  SyncPath(dir.empty() ? "." : dir.c_str());
  return true;
}

}  // namespace ppn
