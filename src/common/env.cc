#include "common/env.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/parse.h"

namespace ppn::env {

namespace {

// The single source of truth for every environment knob the binaries read.
// run_benches.sh / CI knobs consumed only by shell scripts are listed too,
// so `ppn_cli help-env` documents the whole surface.
const VarInfo kRegistry[] = {
    {"PPN_WORKERS", "int", "hardware threads",
     "Worker threads for exec::ThreadPool consumers (0 = run inline)"},
    {"PPN_SCALE", "enum", "quick",
     "Run scale for presets and examples: smoke | quick | full"},
    {"PPN_OBS", "flag", "off",
     "Force the obs layer on (any value but \"0\") without a sink path"},
    {"PPN_PROFILE_JSON", "path", "unset",
     "Write an aggregated obs profile snapshot to this path at exit"},
    {"PPN_TRACE_JSON", "path", "unset",
     "Write a Chrome trace-event timeline to this path at exit"},
    {"PPN_TRACE_CAPACITY", "int", "65536",
     "Per-thread trace ring capacity in events (values <= 0 use default)"},
    {"PPN_TRACE_MIN_US", "double", "0",
     "Drop trace spans shorter than this many microseconds"},
    {"PPN_RUNLOG_DIR", "path", "unset",
     "Directory for streaming per-step run logs (one JSONL per run)"},
    {"PPN_STATS_JSONL", "path", "unset",
     "Stream periodic ppn.stats.v1 registry samples to this JSONL path "
     "(fabric workers get per-worker redirected streams)"},
    {"PPN_SAMPLE_MS", "int", "250",
     "Stats sampler window in milliseconds (must be >= 1)"},
    {"PPN_HEALTH", "rules", "unset",
     "Comma-separated SLO rules (<metric><op><value>, e.g. "
     "serve.decide.latency.seconds.p99<5ms) checked per sample window "
     "and at exit; any violation makes the run exit nonzero"},
    {"PPN_RESULTS_JSON", "path", "unset",
     "Benchmark harness: append bench context results to this JSON"},
    {"PPN_NO_POOL", "flag", "off",
     "Disable the thread-local tensor buffer pool (any value but \"0\")"},
    {"PPN_SIMD", "enum", "auto",
     "Kernel SIMD path: auto (CPUID-selected) | avx2 | scalar; all paths "
     "are bit-identical"},
    {"PPN_FABRIC_WORKER_TIMEOUT_S", "double", "300",
     "Sweep fabric: claims observed unchanged for this many seconds are "
     "stragglers and get a backup task re-dispatched (capped per cell, "
     "never fatal)"},
    {"PPN_FABRIC_MAX_RESTARTS", "int", "8",
     "Sweep fabric: worker respawns beyond the initial fleet before the "
     "coordinator gives up"},
    {"PPN_FABRIC_TEST_KILL_AFTER", "slot:cells", "unset",
     "Fabric fault injection (tests): worker <slot> SIGKILLs itself after "
     "finishing <cells> cells; stripped from respawned workers"},
    {"PPN_FABRIC_TEST_HANG_AFTER", "slot:cells", "unset",
     "Fabric fault injection (tests): worker <slot> hangs forever on its "
     "<cells>-th claim; stripped from respawned workers"},
    {"PPN_BENCH_GATE", "flag", "off",
     "run_benches.sh: diff gated benches against the archived baseline"},
    {"PPN_BENCH_REPS", "int", "3",
     "run_benches.sh: benchmark repetitions for gated benches"},
};

const VarInfo* Find(const char* name) {
  for (const VarInfo& info : kRegistry) {
    if (std::strcmp(info.name, name) == 0) return &info;
  }
  return nullptr;
}

const char* CheckedGet(const char* name) {
  PPN_CHECK(Find(name) != nullptr)
      << "environment knob " << name << " is not registered in common/env.cc";
  return std::getenv(name);
}

}  // namespace

const std::vector<VarInfo>& Registry() {
  static const std::vector<VarInfo> registry(std::begin(kRegistry),
                                             std::end(kRegistry));
  return registry;
}

const char* Raw(const char* name) { return CheckedGet(name); }

bool IsSet(const char* name) { return CheckedGet(name) != nullptr; }

bool HasValue(const char* name) {
  const char* value = CheckedGet(name);
  return value != nullptr && value[0] != '\0';
}

bool FlagSet(const char* name) {
  const char* value = CheckedGet(name);
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

int64_t Int64Or(const char* name, int64_t fallback) {
  const char* value = CheckedGet(name);
  if (value == nullptr) return fallback;
  return ParseInt64OrDie(value, name);
}

double DoubleOr(const char* name, double fallback) {
  const char* value = CheckedGet(name);
  if (value == nullptr) return fallback;
  return ParseDoubleOrDie(value, name);
}

std::string StringOr(const char* name, const std::string& fallback) {
  const char* value = CheckedGet(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

}  // namespace ppn::env
