#ifndef PPN_COMMON_JSON_H_
#define PPN_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// Minimal JSON reader for the telemetry tooling: `ppn_cli report` parses
/// RunLog JSONL lines and Chrome trace-event files that this repo itself
/// writes, and the test suite uses it to validate exporter output. It is a
/// strict recursive-descent parser over the full JSON grammar (objects,
/// arrays, strings with escapes, numbers, booleans, null) — not a
/// streaming parser; inputs here are at most a few MB.

namespace ppn {

/// One parsed JSON value. A tagged tree: exactly the members matching
/// `type()` are meaningful.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; PPN_CHECK-abort on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;

  /// Object members in document order (duplicate keys are kept as-is).
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  /// Pointer to the first member named `key`, or nullptr. Checks this is
  /// an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience lookups with fallback: nullptr/absent/mistyped members
  /// yield the fallback instead of aborting.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses `text` (one complete JSON document, optionally surrounded by
/// whitespace). On failure returns false and, when `error` is non-null,
/// describes the first offending byte and its offset.
bool ParseJson(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace ppn

#endif  // PPN_COMMON_JSON_H_
