#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace ppn {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  PPN_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  PPN_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return static_cast<int64_t>(v % un);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  PPN_CHECK_GE(stddev, 0.0);
  return mean + stddev * Normal();
}

double Rng::Gamma(double shape) {
  PPN_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u > 0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Exponential(double rate) {
  PPN_CHECK_GT(rate, 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<double> Rng::Dirichlet(int dimension, double alpha) {
  PPN_CHECK_GT(dimension, 0);
  PPN_CHECK_GT(alpha, 0.0);
  std::vector<double> sample(dimension);
  double total = 0.0;
  for (double& v : sample) {
    v = Gamma(alpha);
    total += v;
  }
  if (total <= 0.0) {
    // Degenerate draw (possible for tiny alpha): fall back to uniform.
    for (double& v : sample) v = 1.0 / dimension;
    return sample;
  }
  for (double& v : sample) v /= total;
  return sample;
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  PPN_CHECK_GE(n, 0);
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = UniformInt(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.spare_normal = spare_normal_;
  state.has_spare_normal = has_spare_normal_;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  spare_normal_ = state.spare_normal;
  has_spare_normal_ = state.has_spare_normal;
}

Rng Rng::Split(uint64_t tag) {
  const uint64_t child_seed = NextUint64() ^ (tag * 0x9E3779B97F4A7C15ULL);
  return Rng(child_seed);
}

}  // namespace ppn
