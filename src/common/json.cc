#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/check.h"

namespace ppn {

bool JsonValue::AsBool() const {
  PPN_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double JsonValue::AsNumber() const {
  PPN_CHECK(is_number()) << "JSON value is not a number";
  return number_;
}

const std::string& JsonValue::AsString() const {
  PPN_CHECK(is_string()) << "JSON value is not a string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  PPN_CHECK(is_array()) << "JSON value is not an array";
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  PPN_CHECK(is_object()) << "JSON value is not an object";
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  PPN_CHECK(is_object()) << "JSON value is not an object";
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  if (!is_object()) return fallback;
  const JsonValue* member = Find(key);
  return member != nullptr && member->is_number() ? member->number_ : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  if (!is_object()) return fallback;
  const JsonValue* member = Find(key);
  return member != nullptr && member->is_string() ? member->string_ : fallback;
}

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser state over the input span.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out)) {
      Fill(error);
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      error_ = "trailing content after JSON value";
      Fill(error);
      return false;
    }
    return true;
  }

 private:
  void Fill(std::string* error) const {
    if (error != nullptr) {
      *error = error_ + " at offset " + std::to_string(pos_);
    }
  }

  bool Fail(const std::string& message) {
    error_ = message;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    // Nesting is bounded to keep hostile/corrupt input from overflowing
    // the stack; our own telemetry files nest 4-5 levels deep.
    if (++depth_ > 64) return Fail("nesting too deep");
    bool ok = ParseValueInner(out);
    --depth_;
    return ok;
  }

  bool ParseValueInner(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string value;
        if (!ParseString(&value)) return false;
        *out = JsonValue::MakeString(std::move(value));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) return false;
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return false;
        *out = JsonValue::MakeBool(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return false;
        *out = JsonValue::MakeNull();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      items.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  /// Appends a Unicode code point as UTF-8.
  static void AppendCodePoint(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("invalid \\u escape digit");
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            if (!ParseHex4(&cp)) return false;
            // Surrogate pair: a high surrogate must be followed by \uDC00..
            if (cp >= 0xD800 && cp <= 0xDBFF &&
                text_.substr(pos_, 2) == "\\u") {
              pos_ += 2;
              uint32_t low = 0;
              if (!ParseHex4(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            }
            AppendCodePoint(cp, out);
            break;
          }
          default:
            return Fail("unknown escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Fail("invalid value");
    // strtod over the bounded substring: from_chars<double> is not
    // universally available on the toolchains this builds with.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    *out = JsonValue::MakeNumber(value);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_ = "parse error";
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  PPN_CHECK(out != nullptr);
  return Parser(text).Parse(out, error);
}

}  // namespace ppn
