#ifndef PPN_COMMON_RUN_SCALE_H_
#define PPN_COMMON_RUN_SCALE_H_

/// \file
/// Global run-scale switch for the bench harness. The paper trained for 1e5
/// steps on a TITAN X; the default bench scale keeps every experiment within
/// a laptop-CPU time budget while exercising exactly the same code paths.
/// Set the environment variable `PPN_SCALE=full` to run at paper scale, or
/// `PPN_SCALE=smoke` for CI-sized runs.

namespace ppn {

/// Run-scale tiers. `kQuick` is the default for benches; `kSmoke` is used by
/// integration tests; `kFull` approximates the paper's settings.
enum class RunScale { kSmoke, kQuick, kFull };

/// Reads `PPN_SCALE` from the environment ("smoke" | "quick" | "full");
/// defaults to kQuick when unset or unrecognized.
RunScale GetRunScale();

/// Scales a step/size budget by tier: smoke -> max(1, base/8),
/// quick -> base, full -> base * full_multiplier.
int ScaledSteps(int base, RunScale scale, int full_multiplier = 10);

/// Human-readable name of the tier.
const char* RunScaleName(RunScale scale);

}  // namespace ppn

#endif  // PPN_COMMON_RUN_SCALE_H_
