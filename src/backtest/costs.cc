#include "backtest/costs.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::backtest {

double CostFractionAt(const std::vector<double>& prev_hat,
                      const std::vector<double>& target, double omega,
                      const CostModel& model) {
  PPN_CHECK_EQ(prev_hat.size(), target.size());
  PPN_CHECK_GE(prev_hat.size(), 2u);
  double sales = 0.0;
  double purchases = 0.0;
  // Risk assets only (index 0 is cash), as in the paper's definition.
  for (size_t i = 1; i < target.size(); ++i) {
    const double delta = prev_hat[i] - target[i] * omega;
    if (delta > 0.0) {
      sales += delta;
    } else {
      purchases -= delta;
    }
  }
  return model.sale_rate * sales + model.purchase_rate * purchases;
}

NetWealthSolve SolveNetWealthFactorDetailed(const std::vector<double>& prev_hat,
                                            const std::vector<double>& target,
                                            const CostModel& model) {
  PPN_CHECK(model.purchase_rate >= 0.0 && model.purchase_rate < 1.0);
  PPN_CHECK(model.sale_rate >= 0.0 && model.sale_rate < 1.0);
  PPN_CHECK(IsOnSimplex(prev_hat, 1e-6)) << "prev_hat not a portfolio";
  PPN_CHECK(IsOnSimplex(target, 1e-6)) << "target not a portfolio";
  // The map ω ↦ 1 − c(ω) contracts with factor ≤ max(ψ_p, ψ_s), so the
  // iterate gains −log₂ψ bits per step and the cap below is loose by
  // orders of magnitude for any realistic rate. Roundoff in c(ω) is
  // amplified by 1/(1−ψ) at the fixed point, so the convergence tolerance
  // must widen accordingly or high-ψ solves would oscillate forever at the
  // noise floor. At the paper's ψ = 0.25% both adjustments are inert and
  // the iteration sequence is identical to the original solver.
  const double max_rate = std::max(model.purchase_rate, model.sale_rate);
  const double tolerance = std::max(1e-14, 1e-15 / (1.0 - max_rate));
  constexpr int kMaxIterations = 50000;
  // Solver calls are per-period — far too frequent to trace individually,
  // so only solves slow enough to matter (≥20µs: high ψ or pathological
  // targets) make it into the timeline.
  obs::Span span("backtest.solver.fixed_point", /*min_duration_us=*/20.0);
  NetWealthSolve solve;
  solve.converged = false;
  double omega = 1.0;
  for (int iteration = 0; iteration < kMaxIterations; ++iteration) {
    const double next =
        1.0 - CostFractionAt(prev_hat, target, omega, model);
    if (std::fabs(next - omega) < tolerance) {
      omega = next;
      solve.iterations = iteration + 1;
      solve.converged = true;
      break;
    }
    omega = next;
  }
  if (!solve.converged) solve.iterations = kMaxIterations;
  solve.omega = omega;
  span.AddArg("iterations", static_cast<double>(solve.iterations));
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("backtest.solver.calls");
    static thread_local obs::Histogram& iterations =
        obs::GetHistogram("backtest.solver.iterations");
    calls.Add(1.0);
    iterations.Observe(static_cast<double>(solve.iterations));
    if (!solve.converged) {
      static thread_local obs::Counter& nonconverged =
          obs::GetCounter("backtest.solver.nonconverged");
      nonconverged.Add(1.0);
    }
  }
  return solve;
}

double SolveNetWealthFactor(const std::vector<double>& prev_hat,
                            const std::vector<double>& target,
                            const CostModel& model) {
  const NetWealthSolve solve =
      SolveNetWealthFactorDetailed(prev_hat, target, model);
  PPN_CHECK(solve.converged)
      << "net-wealth fixed point did not converge after" << solve.iterations
      << "iterations (psi_p=" << model.purchase_rate
      << ", psi_s=" << model.sale_rate << ", last omega=" << solve.omega
      << ")";
  return solve.omega;
}

std::vector<double> DriftPortfolio(const std::vector<double>& previous_action,
                                   const std::vector<double>& price_relative) {
  PPN_CHECK_EQ(previous_action.size(), price_relative.size());
  std::vector<double> drifted(previous_action.size());
  double total = 0.0;
  for (size_t i = 0; i < previous_action.size(); ++i) {
    PPN_CHECK_GT(price_relative[i], 0.0);
    drifted[i] = previous_action[i] * price_relative[i];
    total += drifted[i];
  }
  PPN_CHECK_GT(total, 0.0);
  for (double& v : drifted) v /= total;
  return drifted;
}

CostBounds Proposition4Bounds(const std::vector<double>& prev_hat,
                              const std::vector<double>& target, double psi) {
  PPN_CHECK(psi >= 0.0 && psi < 1.0);
  PPN_CHECK_EQ(prev_hat.size(), target.size());
  // The bound is in terms of the L1 distance over risk assets, matching the
  // uniform-rate identity c = ψ ‖a ω − â‖₁ (risk assets).
  double distance = 0.0;
  for (size_t i = 1; i < target.size(); ++i) {
    distance += std::fabs(target[i] - prev_hat[i]);
  }
  CostBounds bounds;
  bounds.lower = psi / (1.0 + psi) * distance;
  bounds.upper = psi / (1.0 - psi) * distance;
  PPN_CHECK_LE(bounds.lower, bounds.upper);
  return bounds;
}

}  // namespace ppn::backtest
