#include "backtest/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace ppn::backtest {

double MaxDrawdown(const std::vector<double>& wealth_curve) {
  double peak = 1.0;  // S_0 = 1.
  double max_drawdown = 0.0;
  for (const double wealth : wealth_curve) {
    peak = std::max(peak, wealth);
    const double drawdown = (peak - wealth) / peak;
    max_drawdown = std::max(max_drawdown, drawdown);
  }
  return max_drawdown;
}

Metrics ComputeMetrics(const BacktestRecord& record) {
  Metrics metrics;
  PPN_CHECK(!record.wealth_curve.empty());
  PPN_CHECK_EQ(record.wealth_curve.size(), record.log_returns.size());
  metrics.apv = record.wealth_curve.back();
  const double mean_return = Mean(record.log_returns);
  const double std_return = StdDev(record.log_returns);
  metrics.std_pct = std_return * 100.0;
  // Sharpe with a 1e-6 volatility floor (mirroring the CR drawdown floor
  // below): a zero-variance profitable strategy reports a large positive
  // SR rather than 0, preserving the sign of the mean return. The floor
  // only binds when std < 1e-6; all other values are unchanged.
  metrics.sr_pct = mean_return / std::max(std_return, 1e-6) * 100.0;
  const double mdd = MaxDrawdown(record.wealth_curve);
  metrics.mdd_pct = mdd * 100.0;
  // Calmar ratio as profit over maximum drawdown; with no drawdown the
  // ratio is unbounded — report profit scaled by a 1e-6 floor instead.
  metrics.cr = (metrics.apv - 1.0) / std::max(mdd, 1e-6);
  if (!record.turnover_terms.empty()) {
    double total = 0.0;
    for (const double term : record.turnover_terms) total += term;
    metrics.turnover =
        total / (2.0 * static_cast<double>(record.turnover_terms.size()));
  }
  return metrics;
}

}  // namespace ppn::backtest
