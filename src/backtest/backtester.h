#ifndef PPN_BACKTEST_BACKTESTER_H_
#define PPN_BACKTEST_BACKTESTER_H_

#include "backtest/costs.h"
#include "backtest/metrics.h"
#include "backtest/strategy.h"
#include "market/dataset.h"

/// \file
/// Sequential backtester: runs a `Strategy` over a period range of an OHLC
/// panel, applying the proportional-transaction-cost accounting of the
/// paper, and records everything the metrics need.

namespace ppn::backtest {

/// Run parameters.
struct BacktestConfig {
  CostModel costs = CostModel::Uniform(0.0025);
  /// First decision period (inclusive). Must leave enough history for the
  /// strategy's window (PPN needs start_period >= k).
  int64_t start_period = 1;
  /// One past the last decision period.
  int64_t end_period = 0;
  /// Optional per-period multiplier on both ψ rates, indexed by absolute
  /// panel period — how stress scenarios layer volume-dependent slippage
  /// (liquidity holes) onto the proportional cost model. Empty = 1
  /// everywhere; when non-empty it must cover every decision period and
  /// keep the effective rates in [0, 1).
  std::vector<double> cost_multipliers;
};

/// Runs `strategy` on `panel` under `config` and returns the full record.
/// Wealth starts at S_0 = 1 in cash (a_0 = [1, 0, ..., 0]).
///
/// Tradeability: any weight the strategy places on an asset that is
/// non-tradeable at period t is forced to zero (the position is closed at
/// the frozen price through the normal ψ accounting — a delisting is a
/// forced sale, not an abort) and the freed weight is renormalized across
/// the remaining portfolio (all-cash if nothing else is held).
BacktestRecord RunBacktest(Strategy* strategy, const market::OhlcPanel& panel,
                           const BacktestConfig& config);

/// Convenience: runs on a dataset's test range with a uniform cost rate.
/// `cost_multipliers` (optional) is forwarded to `BacktestConfig`.
BacktestRecord RunOnTestRange(Strategy* strategy,
                              const market::MarketDataset& dataset,
                              double cost_rate,
                              const std::vector<double>& cost_multipliers = {});

}  // namespace ppn::backtest

#endif  // PPN_BACKTEST_BACKTESTER_H_
