#ifndef PPN_BACKTEST_STRATEGY_H_
#define PPN_BACKTEST_STRATEGY_H_

#include <string>
#include <vector>

#include "market/dataset.h"

/// \file
/// The strategy interface shared by the classic OLPS baselines and the
/// neural policies: a sequential decision maker producing a portfolio
/// vector per trading period.

namespace ppn::backtest {

/// A sequential portfolio-selection policy.
///
/// Timing contract: `Decide(panel, t, prev_hat)` chooses the portfolio a_t
/// that will be exposed to the price relative of period `t`. The strategy
/// may only read panel data from periods strictly BEFORE `t` (closing
/// prices up to t-1); reading period t or later is lookahead and is checked
/// by the test suite.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Display name used in bench tables.
  virtual std::string name() const = 0;

  /// Called once before a run; `first_period` is the first `t` that will be
  /// passed to `Decide`. Strategies with warm-up state reset it here.
  virtual void Reset(const market::OhlcPanel& panel, int64_t first_period);

  /// Returns a_t: an (m+1)-dim vector on the probability simplex with the
  /// cash asset at index 0. `prev_hat` is the drifted portfolio â_{t-1}.
  virtual std::vector<double> Decide(const market::OhlcPanel& panel,
                                     int64_t period,
                                     const std::vector<double>& prev_hat) = 0;
};

}  // namespace ppn::backtest

#endif  // PPN_BACKTEST_STRATEGY_H_
