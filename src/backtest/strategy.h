#ifndef PPN_BACKTEST_STRATEGY_H_
#define PPN_BACKTEST_STRATEGY_H_

#include <string>
#include <vector>

#include "market/dataset.h"

/// \file
/// The strategy interface shared by the classic OLPS baselines and the
/// neural policies: a sequential decision maker producing a portfolio
/// vector per trading period.

namespace ppn::backtest {

/// What a strategy is allowed to see when asked for a decision: the price
/// panel and the period `t` it is deciding FOR. Data from period `t`
/// onward is lookahead and must not be read (checked by the test suite).
/// Passing the pair as one value object keeps the inference interface a
/// single-argument call that both the backtester and the serving engine
/// (`serve::PortfolioServer`) construct the same way.
struct MarketView {
  const market::OhlcPanel& panel;
  int64_t period;
};

/// A sequential portfolio-selection policy. This is the pure INFERENCE
/// interface — `Reset` + `DecideWeights` on a market view — shared by the
/// classic OLPS baselines, the neural policies, the backtester, and the
/// serving engine. Training machinery (gradient steps, replay memory)
/// lives outside this interface, in `ppn::core` / `strategies::TrainedPolicy`.
///
/// Timing contract: `DecideWeights({panel, t}, prev_hat)` chooses the
/// portfolio a_t that will be exposed to the price relative of period `t`.
/// The strategy may only read panel data from periods strictly BEFORE `t`
/// (closing prices up to t-1).
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Display name used in bench tables.
  virtual std::string name() const = 0;

  /// Called once before a run; `first_period` is the first `t` that will be
  /// passed to `DecideWeights`. Strategies with warm-up state reset it here.
  virtual void Reset(const market::OhlcPanel& panel, int64_t first_period);

  /// Returns a_t: an (m+1)-dim vector on the probability simplex with the
  /// cash asset at index 0. `prev_hat` is the drifted portfolio â_{t-1}.
  virtual std::vector<double> DecideWeights(
      const MarketView& view, const std::vector<double>& prev_hat) = 0;
};

}  // namespace ppn::backtest

#endif  // PPN_BACKTEST_STRATEGY_H_
