#ifndef PPN_BACKTEST_COSTS_H_
#define PPN_BACKTEST_COSTS_H_

#include <vector>

/// \file
/// Proportional transaction-cost model (paper Section 5.2.2). Rebalancing
/// from the drifted portfolio â_{t-1} to the target a_t incurs a cost
/// fraction c_t defined implicitly through the net-wealth factor
/// ω_t = 1 - c_t:
///
///   c_t = ψ_s Σ_i (â_{t-1,i} - a_{t,i} ω_t)^+  +
///         ψ_p Σ_i (a_{t,i} ω_t - â_{t-1,i})^+ ,   i over risk assets.
///
/// Portfolio vectors here include the cash asset at index 0; sums run over
/// indices 1..m as in the paper.

namespace ppn::backtest {

/// Transaction cost rates for purchases and sales. The paper sets both to
/// the same ψ (Poloniex max commission 0.25%).
struct CostModel {
  double purchase_rate = 0.0025;  ///< ψ_p
  double sale_rate = 0.0025;      ///< ψ_s

  /// Uniform-rate convenience constructor value.
  static CostModel Uniform(double psi) { return CostModel{psi, psi}; }
};

/// Evaluates the cost fraction for a *given* ω (helper; the self-consistent
/// value comes from `SolveNetWealthFactor`).
double CostFractionAt(const std::vector<double>& prev_hat,
                      const std::vector<double>& target, double omega,
                      const CostModel& model);

/// Outcome of the net-wealth fixed-point solve.
struct NetWealthSolve {
  double omega = 1.0;    ///< Final iterate (the solution when converged).
  int iterations = 0;    ///< Fixed-point steps taken.
  bool converged = true;
};

/// Solves the fixed point ω = 1 - c(ω) by direct iteration and reports the
/// outcome. `prev_hat` and `target` are (m+1)-dim simplex vectors with cash
/// at index 0. The iteration contracts with factor ≈ ψ, so convergence
/// takes O(1/(1-ψ)) steps: a handful at realistic rates, a few hundred as
/// ψ → 0.9, which is why the cap is generous. The tolerance widens with ψ
/// to stay above the floating-point noise floor of the map (amplified by
/// 1/(1-ψ) at the fixed point). Non-convergence is counted in the obs
/// registry (`backtest.solver.nonconverged`) but NOT checked here, so
/// callers can decide how to fail.
NetWealthSolve SolveNetWealthFactorDetailed(const std::vector<double>& prev_hat,
                                            const std::vector<double>& target,
                                            const CostModel& model);

/// Convenience wrapper returning ω_t in (0, 1]. PPN_CHECK-aborts if the
/// iteration did not converge (previously it silently returned the last
/// iterate, corrupting downstream wealth trajectories).
double SolveNetWealthFactor(const std::vector<double>& prev_hat,
                            const std::vector<double>& target,
                            const CostModel& model);

/// The drifted ("current") portfolio before rebalancing:
/// â_{t-1} = (a_{t-1} ⊙ x_{t-1}) / (a_{t-1}ᵀ x_{t-1}).
std::vector<double> DriftPortfolio(const std::vector<double>& previous_action,
                                   const std::vector<double>& price_relative);

/// Proposition 4 bounds on c_t given the L1 distance between target and
/// drifted portfolios (uniform rate ψ):
///   ψ/(1+ψ) · d ≤ c ≤ ψ/(1-ψ) · d,  d = ‖a_t - â_{t-1}‖₁ (risk assets
///   and cash all included, as the bound is stated on full vectors).
struct CostBounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// Evaluates the Prop-4 bounds for a uniform cost rate ψ.
CostBounds Proposition4Bounds(const std::vector<double>& prev_hat,
                              const std::vector<double>& target, double psi);

}  // namespace ppn::backtest

#endif  // PPN_BACKTEST_COSTS_H_
