#include "backtest/backtester.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace ppn::backtest {

void Strategy::Reset(const market::OhlcPanel& panel, int64_t first_period) {
  (void)panel;
  (void)first_period;
}

BacktestRecord RunBacktest(Strategy* strategy, const market::OhlcPanel& panel,
                           const BacktestConfig& config) {
  PPN_CHECK(strategy != nullptr);
  PPN_CHECK_GE(config.start_period, 1);
  PPN_CHECK_LE(config.end_period, panel.num_periods());
  PPN_CHECK_LT(config.start_period, config.end_period);

  const int64_t num_assets = panel.num_assets();
  if (!config.cost_multipliers.empty()) {
    PPN_CHECK_GE(static_cast<int64_t>(config.cost_multipliers.size()),
                 config.end_period)
        << "cost_multipliers must cover every decision period";
  }
  strategy->Reset(panel, config.start_period);

  BacktestRecord record;
  const int64_t steps = config.end_period - config.start_period;
  record.wealth_curve.reserve(steps);
  record.log_returns.reserve(steps);
  record.cost_fractions.reserve(steps);
  record.turnover_terms.reserve(steps);
  record.actions.reserve(steps);

  // Start fully in cash.
  std::vector<double> previous_action(num_assets + 1, 0.0);
  previous_action[0] = 1.0;
  double wealth = 1.0;

  for (int64_t t = config.start_period; t < config.end_period; ++t) {
    // Drift the previous portfolio by the last observed price relative.
    std::vector<double> prev_hat = previous_action;
    if (t >= 2) {
      prev_hat = DriftPortfolio(previous_action,
                                market::PriceRelativesWithCash(panel, t - 1));
    }

    std::vector<double> action = strategy->DecideWeights({panel, t}, prev_hat);
    PPN_CHECK_EQ(action.size(), static_cast<size_t>(num_assets + 1));
    PPN_CHECK(IsOnSimplex(action, 1e-4))
        << strategy->name() << " produced a non-simplex portfolio at t=" << t;
    // Force positions out of assets that cannot trade at t (halted or
    // delisted): a delisting is a forced sale at the frozen price, paid
    // for through the normal ψ accounting below.
    if (panel.HasTradeabilityMask()) {
      for (int64_t a = 0; a < num_assets; ++a) {
        if (!panel.Tradeable(t, a)) action[a + 1] = 0.0;
      }
    }
    // Exact renormalization to keep the accounting identity tight.
    double total = 0.0;
    for (double& v : action) {
      v = std::max(v, 0.0);
      total += v;
    }
    if (total <= 0.0) {
      // Everything the strategy wanted is untradeable: go to cash.
      std::fill(action.begin(), action.end(), 0.0);
      action[0] = 1.0;
      total = 1.0;
    }
    for (double& v : action) v /= total;

    CostModel costs = config.costs;
    if (!config.cost_multipliers.empty()) {
      const double multiplier = config.cost_multipliers[t];
      PPN_CHECK_GE(multiplier, 0.0);
      costs.purchase_rate *= multiplier;
      costs.sale_rate *= multiplier;
      PPN_CHECK(costs.purchase_rate < 1.0 && costs.sale_rate < 1.0)
          << "cost multiplier " << multiplier << " at t=" << t
          << " pushes the effective rate past 1";
    }
    const NetWealthSolve solve =
        SolveNetWealthFactorDetailed(prev_hat, action, costs);
    PPN_CHECK(solve.converged)
        << "net-wealth solve failed at t=" << t << " for " << strategy->name()
        << " (psi_p=" << costs.purchase_rate
        << ", psi_s=" << costs.sale_rate << ")";
    const double omega = solve.omega;
    const std::vector<double> relative =
        market::PriceRelativesWithCash(panel, t);
    const double gross_return = Dot(action, relative);
    PPN_CHECK_GT(gross_return, 0.0);
    const double net_return = gross_return * omega;
    wealth *= net_return;

    double turnover_term = 0.0;
    for (size_t i = 0; i < action.size(); ++i) {
      turnover_term += std::fabs(prev_hat[i] - action[i] * omega);
    }

    record.wealth_curve.push_back(wealth);
    record.log_returns.push_back(std::log(net_return));
    record.cost_fractions.push_back(1.0 - omega);
    record.turnover_terms.push_back(turnover_term);
    record.actions.push_back(action);

    previous_action = std::move(action);
  }
  return record;
}

BacktestRecord RunOnTestRange(Strategy* strategy,
                              const market::MarketDataset& dataset,
                              double cost_rate,
                              const std::vector<double>& cost_multipliers) {
  BacktestConfig config;
  config.costs = CostModel::Uniform(cost_rate);
  config.start_period = dataset.train_end;
  config.end_period = dataset.panel.num_periods();
  config.cost_multipliers = cost_multipliers;
  return RunBacktest(strategy, dataset.panel, config);
}

}  // namespace ppn::backtest
