#ifndef PPN_BACKTEST_METRICS_H_
#define PPN_BACKTEST_METRICS_H_

#include <vector>

/// \file
/// Performance metrics from Section 6.1.2: APV, Sharpe ratio, return
/// standard deviation, maximum drawdown, Calmar ratio, and turnover.

namespace ppn::backtest {

/// Per-period records of one backtest run.
struct BacktestRecord {
  /// Gross wealth S_t after each trading period, starting after the first
  /// decision (wealth_curve[0] is the wealth after period 1; S_0 = 1 is
  /// implicit).
  std::vector<double> wealth_curve;
  /// Rebalanced log-returns log(a_tᵀ x_t (1 - c_t)) per period.
  std::vector<double> log_returns;
  /// Transaction-cost fraction c_t per period.
  std::vector<double> cost_fractions;
  /// Turnover terms ‖â_{t-1} - a_t ω_t‖₁ per period (full vectors).
  std::vector<double> turnover_terms;
  /// Chosen portfolios a_t per period (m+1 with cash at index 0).
  std::vector<std::vector<double>> actions;
};

/// Aggregated metrics (percent-valued fields carry "pct" suffixes to match
/// the paper's SR(%) / STD(%) / MDD(%)).
struct Metrics {
  double apv = 1.0;      ///< Final wealth S_n (S_0 = 1).
  double sr_pct = 0.0;   ///< mean(r_t^c) / std(r_t^c) * 100 on log-returns.
  double std_pct = 0.0;  ///< std(r_t^c) * 100.
  double mdd_pct = 0.0;  ///< max drawdown * 100.
  double cr = 0.0;       ///< Calmar ratio: (S_n - 1) / MDD.
  double turnover = 0.0; ///< TO = 1/(2n) Σ ‖â_{t-1} - a_t ω_t‖₁.
};

/// Maximum drawdown (fraction in [0, 1]) of a wealth curve that implicitly
/// starts at 1.
double MaxDrawdown(const std::vector<double>& wealth_curve);

/// Computes all metrics from a run record.
Metrics ComputeMetrics(const BacktestRecord& record);

}  // namespace ppn::backtest

#endif  // PPN_BACKTEST_METRICS_H_
