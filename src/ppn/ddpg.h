#ifndef PPN_PPN_DDPG_H_
#define PPN_PPN_DDPG_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "market/dataset.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "obs/run_log.h"
#include "ppn/policy_module.h"
#include "ppn/reward.h"

/// \file
/// PPN-AC (paper Section 7.2 / Table 9): the actor–critic ablation. The
/// actor is a PPN; the critic approximates Q(s, a_{t-1}, a) with a small
/// convolutional state encoder and a dueling-style split Q = V(s) + A(s,a).
/// Trained with DDPG (Lillicrap et al. 2016): replay buffer, target
/// networks with Polyak averaging, and exploration by Dirichlet mixing.
///
/// The per-period reward is the rebalanced log-return log(aᵀx·ω); the
/// batch-statistic terms of Eq. 1 (variance, turnover) have no per-period
/// analogue, which is part of why the paper finds AC inferior here.

namespace ppn::core {

/// Critic network: state encoder (per-asset convs) + dueling heads.
class CriticNetwork : public nn::Module {
 public:
  CriticNetwork(const PolicyConfig& config, Rng* init_rng);

  /// windows [B, m, k, 4], prev_actions [B, m], actions [B, m+1]
  /// -> Q values [B, 1].
  ag::Var Forward(const ag::Var& windows, const ag::Var& prev_actions,
                  const ag::Var& actions) const;

 private:
  PolicyConfig config_;
  int64_t state_features_;
  std::unique_ptr<nn::Conv2dLayer> conv1_;
  std::unique_ptr<nn::Conv2dLayer> conv2_;
  std::unique_ptr<nn::Linear> value_hidden_;
  std::unique_ptr<nn::Linear> value_head_;
  std::unique_ptr<nn::Linear> advantage_hidden_;
  std::unique_ptr<nn::Linear> advantage_head_;
};

/// DDPG hyperparameters.
struct DdpgConfig {
  int64_t steps = 1200;        ///< Environment/learning steps.
  int64_t batch_size = 32;     ///< Replay minibatch.
  int64_t warmup = 64;         ///< Steps before learning starts.
  int64_t buffer_capacity = 4096;
  float actor_lr = 1e-3f;
  float critic_lr = 1e-3f;
  float tau = 0.01f;           ///< Target soft-update rate.
  float discount = 0.95f;
  double explore_start = 0.4;  ///< Initial Dirichlet mixing weight.
  double explore_end = 0.02;
  double cost_rate = 0.0025;   ///< ψ for the per-period reward.
  uint64_t seed = 3;

  /// Checks steps/batch_size > 0, warmup ≥ 0, buffer_capacity ≥
  /// batch_size, both learning rates > 0, tau ∈ (0, 1], discount ∈ [0, 1],
  /// explore weights in [0, 1], and ψ ∈ [0, 1). Aborts on violation;
  /// called at trainer construction.
  void Validate() const;
};

/// Trains a PPN actor with DDPG on a dataset's training range.
class DdpgTrainer {
 public:
  /// `actor` must outlive the trainer and match the dataset's asset count.
  DdpgTrainer(PolicyModule* actor, const market::MarketDataset& dataset,
              DdpgConfig config);
  ~DdpgTrainer();

  /// Runs one environment step (plus a learning step once the replay
  /// buffer has warmed up); returns the per-period reward.
  double TrainStep();

  /// Runs steps until `steps_done() == config.steps` (the remainder after
  /// `LoadState`). Returns the mean reward of the last 10% of environment
  /// steps.
  double Train();

  /// Environment steps taken so far (survives checkpoint/restore).
  int64_t steps_done() const { return steps_done_; }

  /// Mean reward over the completed tail-window steps (0 before any).
  double tail_mean() const {
    return tail_count_ > 0 ? tail_sum_ / tail_count_ : 0.0;
  }

  /// Attaches a per-step telemetry sink (nullptr detaches). NOT owned;
  /// must outlive the trainer or be detached first. The per-period reward
  /// is logged as both total and log-return (Eq. 1's batch-statistic
  /// variance/turnover terms have no per-period analogue here and stay
  /// 0); grad_norm is the actor's pre-clip norm from the latest learn
  /// step. Purely observational — never changes training results.
  void AttachRunLog(obs::RunLog* run_log) { run_log_ = run_log; }

  /// Serializes the complete DDPG state — actor/critic and both target
  /// networks, both Adam optimizers, the RNG streams (exploration, the
  /// internally owned target-net dropout stream, and the externally owned
  /// actor dropout stream, if any), the replay buffer, and the environment
  /// cursor — so a restored trainer continues bit-identically.
  /// `actor_dropout_rng` is the stream the actor was built with (consumed
  /// by its dropout layers during learn steps); nullptr when the actor has
  /// no dropout.
  void SaveState(ckpt::CheckpointWriter* writer,
                 const Rng* actor_dropout_rng) const;

  /// Restores state written by `SaveState`; false with a contextual
  /// `*error` on any shape or config mismatch.
  bool LoadState(ckpt::CheckpointReader* reader, Rng* actor_dropout_rng,
                 std::string* error);

 private:
  struct Transition {
    int64_t period;            ///< Decision period t.
    std::vector<double> prev;  ///< a_{t-1} (m+1).
    std::vector<double> action;
    double reward;
    bool has_next;             ///< Next period still inside the range.
  };

  Tensor WindowsFor(const std::vector<int64_t>& periods) const;
  Tensor PrevRiskFor(const std::vector<const Transition*>& batch) const;
  void LearnStep();

  PolicyModule* actor_;
  DdpgConfig config_;
  int64_t num_assets_;
  int64_t window_;
  int64_t first_period_;
  int64_t last_period_;
  Rng rng_;
  Rng dropout_rng_;

  std::unique_ptr<CriticNetwork> critic_;
  std::unique_ptr<PolicyModule> target_actor_;
  std::unique_ptr<CriticNetwork> target_critic_;
  std::unique_ptr<nn::Adam> actor_optimizer_;
  std::unique_ptr<nn::Adam> critic_optimizer_;

  std::vector<Tensor> windows_;  ///< Indexed by t - first_period_.
  std::vector<std::vector<double>> relatives_;
  std::vector<Transition> buffer_;
  int64_t buffer_next_ = 0;

  /// Environment cursor and step counters — members (not Train() locals)
  /// so they are part of the checkpointed state.
  int64_t env_period_;
  std::vector<double> previous_action_;
  int64_t steps_done_ = 0;
  double tail_sum_ = 0.0;
  int64_t tail_count_ = 0;

  /// Telemetry only (not checkpointed): the actor's pre-clip gradient
  /// norm from the most recent LearnStep, and the attached run log.
  double last_actor_grad_norm_ = 0.0;
  obs::RunLog* run_log_ = nullptr;
};

}  // namespace ppn::core

#endif  // PPN_PPN_DDPG_H_
