#include "ppn/trainer.h"

#include <chrono>
#include <cmath>

#include "backtest/costs.h"
#include "ckpt/state_io.h"
#include "common/check.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::core {

void TrainerConfig::Validate() const {
  PPN_CHECK_GT(batch_size, 0);
  PPN_CHECK_GT(steps, 0);
  PPN_CHECK_GT(learning_rate, 0.0f);
  PPN_CHECK_GE(weight_decay, 0.0f);
  PPN_CHECK_GT(grad_clip, 0.0);
  PPN_CHECK(geometric_p >= 0.0 && geometric_p < 1.0)
      << "geometric_p out of [0, 1): " << geometric_p;
  PPN_CHECK(adversarial_epsilon >= 0.0 && adversarial_epsilon < 1.0)
      << "adversarial_epsilon out of [0, 1): " << adversarial_epsilon;
  reward.Validate();
}

PolicyGradientTrainer::PolicyGradientTrainer(
    PolicyModule* policy, const market::MarketDataset& dataset,
    TrainerConfig config)
    : policy_(policy),
      config_(std::move(config)),
      num_assets_(policy->config().num_assets),
      window_(policy->config().window),
      first_period_(policy->config().window),
      last_period_(dataset.train_end),
      pvm_(dataset.panel.num_periods(), policy->config().num_assets),
      pvm_write_step_(static_cast<size_t>(dataset.panel.num_periods()), -1),
      rng_(config_.seed) {
  config_.Validate();
  PPN_CHECK(policy != nullptr);
  PPN_CHECK_EQ(dataset.panel.num_assets(), num_assets_);
  PPN_CHECK_GT(last_period_ - first_period_, config_.batch_size)
      << "training range too short for the batch size";
  // Precompute decision windows (data through t-1 for a decision at t) and
  // price relatives over the training range.
  windows_.reserve(last_period_ - first_period_);
  for (int64_t t = first_period_; t < last_period_; ++t) {
    windows_.push_back(market::NormalizedWindow(dataset.panel, t - 1, window_));
  }
  relatives_.resize(last_period_);
  for (int64_t t = 1; t < last_period_; ++t) {
    relatives_[t] = market::PriceRelativesWithCash(dataset.panel, t);
  }
  optimizer_ = std::make_unique<nn::Adam>(
      policy_->Parameters(), config_.learning_rate, 0.9f, 0.999f, 1e-8f,
      config_.weight_decay);
}

Tensor PolicyGradientTrainer::BatchWindows(int64_t t0) const {
  const int64_t batch = config_.batch_size;
  Tensor out({batch, num_assets_, window_, market::kNumPriceFields});
  float* po = out.MutableData();
  const int64_t per_window =
      num_assets_ * window_ * market::kNumPriceFields;
  for (int64_t b = 0; b < batch; ++b) {
    const Tensor& w = windows_[t0 - first_period_ + b];
    const float* pw = w.Data();
    for (int64_t i = 0; i < per_window; ++i) po[b * per_window + i] = pw[i];
  }
  return out;
}

double PolicyGradientTrainer::TrainStep() {
  obs::ScopedTimer step_timer("trainer.step.seconds");
  obs::Span step_span("trainer.step");
  step_span.AddArg("step", static_cast<double>(steps_done_));
  // The wall clock for the run log is read explicitly (not via the
  // ScopedTimer) so the record carries this step's own duration.
  const bool logging = run_log_ != nullptr;
  const auto step_start = logging ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  const int64_t batch = config_.batch_size;
  const int64_t min_start = first_period_;
  const int64_t max_start = last_period_ - batch;  // Inclusive.
  PPN_CHECK_GE(max_start, min_start);

  // Sample the batch start, optionally geometrically biased toward the end
  // of the training range (EIIE's online stochastic batch scheme).
  int64_t t0;
  if (config_.geometric_p > 0.0) {
    const double u = rng_.Uniform();
    const int64_t offset = static_cast<int64_t>(
        std::log(u > 1e-12 ? u : 1e-12) / std::log1p(-config_.geometric_p));
    t0 = max_start - std::min(offset, max_start - min_start);
  } else {
    t0 = min_start + rng_.UniformInt(max_start - min_start + 1);
  }

  // Assemble batch inputs.
  Tensor windows = BatchWindows(t0);
  Tensor prev_actions({batch, num_assets_});
  RewardInputs inputs;
  inputs.relatives = Tensor({batch, num_assets_ + 1});
  inputs.prev_hat = Tensor({batch, num_assets_ + 1});
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t t = t0 + b;
    const std::vector<double>& previous = pvm_.Get(t - 1);
    for (int64_t i = 0; i < num_assets_; ++i) {
      prev_actions.MutableData()[b * num_assets_ + i] =
          static_cast<float>(previous[i + 1]);
    }
    const std::vector<double>& x_t = relatives_[t];
    // Drift the PVM action through the previous period's relative.
    std::vector<double> prev_hat = previous;
    if (t >= 2) {
      prev_hat = backtest::DriftPortfolio(previous, relatives_[t - 1]);
    }
    for (int64_t i = 0; i <= num_assets_; ++i) {
      double relative = x_t[i];
      // Return-perturbation adversary: risk assets only, cash stays 1.
      if (config_.adversarial_epsilon > 0.0 && i >= 1) {
        relative *= std::exp(config_.adversarial_epsilon * rng_.Normal());
      }
      inputs.relatives.MutableData()[b * (num_assets_ + 1) + i] =
          static_cast<float>(relative);
      inputs.prev_hat.MutableData()[b * (num_assets_ + 1) + i] =
          static_cast<float>(prev_hat[i]);
    }
  }

  // Forward + reward + backward + step.
  policy_->SetTraining(true);
  policy_->ZeroGrad();
  ag::Var actions = policy_->Forward(ag::Constant(windows),
                                     ag::Constant(prev_actions));
  RewardBreakdown breakdown;
  ag::Var reward = CostSensitiveReward(actions, inputs, config_.reward,
                                       &breakdown);
  ag::Var loss = ag::Neg(reward);
  ag::Backward(loss);
  const double grad_norm = optimizer_->ClipGradNorm(config_.grad_clip);
  optimizer_->Step();

  // Staleness of the recursive a_{t-1} inputs this batch consumed: how
  // many steps ago each row's PVM entry was last rewritten (reads the
  // pre-update write steps, so it describes what Forward actually saw).
  double pvm_staleness = 0.0;
  if (logging) {
    for (int64_t b = 0; b < batch; ++b) {
      pvm_staleness += static_cast<double>(
          steps_done_ - pvm_write_step_[static_cast<size_t>(t0 + b - 1)]);
    }
    pvm_staleness /= static_cast<double>(batch);
  }

  // Refresh the portfolio vector memory with the new actions.
  for (int64_t b = 0; b < batch; ++b) {
    std::vector<double> action(num_assets_ + 1);
    for (int64_t i = 0; i <= num_assets_; ++i) {
      action[i] = actions->value()[b * (num_assets_ + 1) + i];
    }
    pvm_.Set(t0 + b, std::move(action));
    pvm_write_step_[static_cast<size_t>(t0 + b)] = steps_done_;
  }
  if (obs::Enabled()) {
    static thread_local obs::Counter& steps =
        obs::GetCounter("trainer.steps");
    steps.Add(1.0);
    // The ring is keyed by the trainer's seed, which derives from the cell
    // key in sweeps — so the merged profile names traces deterministically
    // regardless of which worker ran the cell.
    obs::GetTraceRing(
            "trainer.reward.seed" + std::to_string(config_.seed),
            {{"total", "log_return", "variance", "turnover"}})
        .Append(steps_done_, breakdown.total, breakdown.mean_log_return,
                breakdown.variance, breakdown.mean_turnover);
  }
  // Accumulate the convergence tail (final 10% of the configured run) in
  // members so the indicator is part of the checkpointed state.
  const int64_t tail_start =
      config_.steps - std::max<int64_t>(config_.steps / 10, 1);
  if (steps_done_ >= tail_start && steps_done_ < config_.steps) {
    tail_sum_ += breakdown.total;
    ++tail_count_;
  }
  step_span.AddArg("reward", breakdown.total);
  step_span.AddArg("grad_norm", grad_norm);
  if (logging) {
    obs::RunLogRecord record;
    record.step = steps_done_;
    record.reward_total = breakdown.total;
    record.reward_log_return = breakdown.mean_log_return;
    record.reward_variance = breakdown.variance;
    record.reward_turnover = breakdown.mean_turnover;
    record.grad_norm = grad_norm;
    record.pvm_staleness = pvm_staleness;
    record.solver_iterations = static_cast<double>(breakdown.solver_iterations);
    record.step_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - step_start)
                              .count();
    run_log_->Append(record);
  }
  ++steps_done_;
  return breakdown.total;
}

double PolicyGradientTrainer::Train() {
  while (steps_done_ < config_.steps) TrainStep();
  return tail_mean();
}

void PolicyGradientTrainer::SaveState(ckpt::CheckpointWriter* writer,
                                      const Rng* dropout_rng) const {
  PPN_CHECK(writer != nullptr);
  writer->BeginSection("module");
  policy_->SaveState(&writer->writer());

  writer->BeginSection("optimizer");
  optimizer_->SaveState(&writer->writer());

  writer->BeginSection("rng");
  ckpt::WriteRng(&writer->writer(), rng_);
  writer->writer().WriteU8(dropout_rng != nullptr ? 1 : 0);
  if (dropout_rng != nullptr) {
    ckpt::WriteRng(&writer->writer(), *dropout_rng);
  }

  writer->BeginSection("pvm");
  writer->writer().WriteI64(pvm_.num_periods());
  writer->writer().WriteI64(pvm_.num_assets());
  for (int64_t t = 0; t < pvm_.num_periods(); ++t) {
    ckpt::WriteDoubleVector(&writer->writer(), pvm_.Get(t));
  }

  writer->BeginSection("trainer");
  // Config echo: a checkpoint only makes sense against the run that wrote
  // it, so the load path cross-checks these against the live config.
  writer->writer().WriteI64(config_.batch_size);
  writer->writer().WriteI64(config_.steps);
  writer->writer().WriteU64(config_.seed);
  writer->writer().WriteI64(steps_done_);
  writer->writer().WriteF64(tail_sum_);
  writer->writer().WriteI64(tail_count_);
}

bool PolicyGradientTrainer::LoadState(ckpt::CheckpointReader* reader,
                                      Rng* dropout_rng, std::string* error) {
  PPN_CHECK(reader != nullptr);
  PPN_CHECK(error != nullptr);
  if (!reader->EnterSection("module", error)) return false;
  if (!policy_->LoadState(&reader->reader(), error)) return false;

  if (!reader->EnterSection("optimizer", error)) return false;
  if (!optimizer_->LoadState(&reader->reader(), error)) return false;

  if (!reader->EnterSection("rng", error)) return false;
  uint8_t has_dropout = 0;
  if (!ckpt::ReadRng(&reader->reader(), &rng_) ||
      !reader->reader().ReadU8(&has_dropout)) {
    *error = "trainer state: short read in rng section";
    return false;
  }
  if ((has_dropout != 0) != (dropout_rng != nullptr)) {
    *error = has_dropout != 0
                 ? "trainer state: checkpoint has a dropout rng stream but "
                   "none was supplied"
                 : "trainer state: dropout rng supplied but the checkpoint "
                   "has no stream for it";
    return false;
  }
  if (dropout_rng != nullptr &&
      !ckpt::ReadRng(&reader->reader(), dropout_rng)) {
    *error = "trainer state: short read in dropout rng stream";
    return false;
  }

  if (!reader->EnterSection("pvm", error)) return false;
  int64_t num_periods = 0;
  int64_t num_assets = 0;
  if (!reader->reader().ReadI64(&num_periods) ||
      !reader->reader().ReadI64(&num_assets)) {
    *error = "trainer state: short read in pvm header";
    return false;
  }
  if (num_periods != pvm_.num_periods() || num_assets != pvm_.num_assets()) {
    *error = "trainer state: pvm shape mismatch (stored " +
             std::to_string(num_periods) + "x" + std::to_string(num_assets) +
             ", live " + std::to_string(pvm_.num_periods()) + "x" +
             std::to_string(pvm_.num_assets()) + ")";
    return false;
  }
  for (int64_t t = 0; t < num_periods; ++t) {
    std::vector<double> action;
    if (!ckpt::ReadDoubleVector(&reader->reader(), &action) ||
        action.size() != static_cast<size_t>(num_assets) + 1) {
      *error = "trainer state: bad pvm entry at period " + std::to_string(t);
      return false;
    }
    pvm_.Set(t, std::move(action));
  }

  if (!reader->EnterSection("trainer", error)) return false;
  int64_t batch_size = 0;
  int64_t steps = 0;
  uint64_t seed = 0;
  int64_t steps_done = 0;
  double tail_sum = 0.0;
  int64_t tail_count = 0;
  if (!reader->reader().ReadI64(&batch_size) ||
      !reader->reader().ReadI64(&steps) || !reader->reader().ReadU64(&seed) ||
      !reader->reader().ReadI64(&steps_done) ||
      !reader->reader().ReadF64(&tail_sum) ||
      !reader->reader().ReadI64(&tail_count)) {
    *error = "trainer state: short read in trainer section";
    return false;
  }
  if (batch_size != config_.batch_size || steps != config_.steps ||
      seed != config_.seed) {
    *error = "trainer state: config mismatch (checkpoint written with "
             "batch_size=" +
             std::to_string(batch_size) + " steps=" + std::to_string(steps) +
             " seed=" + std::to_string(seed) + ")";
    return false;
  }
  if (steps_done < 0 || steps_done > config_.steps || tail_count < 0) {
    *error = "trainer state: implausible step counters";
    return false;
  }
  steps_done_ = steps_done;
  tail_sum_ = tail_sum;
  tail_count_ = tail_count;
  return reader->Finish(error);
}

}  // namespace ppn::core
