#include "ppn/trainer.h"

#include <cmath>

#include "backtest/costs.h"
#include "common/check.h"
#include "obs/stats.h"

namespace ppn::core {

void TrainerConfig::Validate() const {
  PPN_CHECK_GT(batch_size, 0);
  PPN_CHECK_GT(steps, 0);
  PPN_CHECK_GT(learning_rate, 0.0f);
  PPN_CHECK_GE(weight_decay, 0.0f);
  PPN_CHECK_GT(grad_clip, 0.0);
  PPN_CHECK(geometric_p >= 0.0 && geometric_p < 1.0)
      << "geometric_p out of [0, 1): " << geometric_p;
  reward.Validate();
}

PolicyGradientTrainer::PolicyGradientTrainer(
    PolicyModule* policy, const market::MarketDataset& dataset,
    TrainerConfig config)
    : policy_(policy),
      config_(std::move(config)),
      num_assets_(policy->config().num_assets),
      window_(policy->config().window),
      first_period_(policy->config().window),
      last_period_(dataset.train_end),
      pvm_(dataset.panel.num_periods(), policy->config().num_assets),
      rng_(config_.seed) {
  config_.Validate();
  PPN_CHECK(policy != nullptr);
  PPN_CHECK_EQ(dataset.panel.num_assets(), num_assets_);
  PPN_CHECK_GT(last_period_ - first_period_, config_.batch_size)
      << "training range too short for the batch size";
  // Precompute decision windows (data through t-1 for a decision at t) and
  // price relatives over the training range.
  windows_.reserve(last_period_ - first_period_);
  for (int64_t t = first_period_; t < last_period_; ++t) {
    windows_.push_back(market::NormalizedWindow(dataset.panel, t - 1, window_));
  }
  relatives_.resize(last_period_);
  for (int64_t t = 1; t < last_period_; ++t) {
    relatives_[t] = market::PriceRelativesWithCash(dataset.panel, t);
  }
  optimizer_ = std::make_unique<nn::Adam>(
      policy_->Parameters(), config_.learning_rate, 0.9f, 0.999f, 1e-8f,
      config_.weight_decay);
}

Tensor PolicyGradientTrainer::BatchWindows(int64_t t0) const {
  const int64_t batch = config_.batch_size;
  Tensor out({batch, num_assets_, window_, market::kNumPriceFields});
  float* po = out.MutableData();
  const int64_t per_window =
      num_assets_ * window_ * market::kNumPriceFields;
  for (int64_t b = 0; b < batch; ++b) {
    const Tensor& w = windows_[t0 - first_period_ + b];
    const float* pw = w.Data();
    for (int64_t i = 0; i < per_window; ++i) po[b * per_window + i] = pw[i];
  }
  return out;
}

double PolicyGradientTrainer::TrainStep() {
  obs::ScopedTimer step_timer("trainer.step.seconds");
  const int64_t batch = config_.batch_size;
  const int64_t min_start = first_period_;
  const int64_t max_start = last_period_ - batch;  // Inclusive.
  PPN_CHECK_GE(max_start, min_start);

  // Sample the batch start, optionally geometrically biased toward the end
  // of the training range (EIIE's online stochastic batch scheme).
  int64_t t0;
  if (config_.geometric_p > 0.0) {
    const double u = rng_.Uniform();
    const int64_t offset = static_cast<int64_t>(
        std::log(u > 1e-12 ? u : 1e-12) / std::log1p(-config_.geometric_p));
    t0 = max_start - std::min(offset, max_start - min_start);
  } else {
    t0 = min_start + rng_.UniformInt(max_start - min_start + 1);
  }

  // Assemble batch inputs.
  Tensor windows = BatchWindows(t0);
  Tensor prev_actions({batch, num_assets_});
  RewardInputs inputs;
  inputs.relatives = Tensor({batch, num_assets_ + 1});
  inputs.prev_hat = Tensor({batch, num_assets_ + 1});
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t t = t0 + b;
    const std::vector<double>& previous = pvm_.Get(t - 1);
    for (int64_t i = 0; i < num_assets_; ++i) {
      prev_actions.MutableData()[b * num_assets_ + i] =
          static_cast<float>(previous[i + 1]);
    }
    const std::vector<double>& x_t = relatives_[t];
    // Drift the PVM action through the previous period's relative.
    std::vector<double> prev_hat = previous;
    if (t >= 2) {
      prev_hat = backtest::DriftPortfolio(previous, relatives_[t - 1]);
    }
    for (int64_t i = 0; i <= num_assets_; ++i) {
      inputs.relatives.MutableData()[b * (num_assets_ + 1) + i] =
          static_cast<float>(x_t[i]);
      inputs.prev_hat.MutableData()[b * (num_assets_ + 1) + i] =
          static_cast<float>(prev_hat[i]);
    }
  }

  // Forward + reward + backward + step.
  policy_->SetTraining(true);
  policy_->ZeroGrad();
  ag::Var actions = policy_->Forward(ag::Constant(windows),
                                     ag::Constant(prev_actions));
  RewardBreakdown breakdown;
  ag::Var reward = CostSensitiveReward(actions, inputs, config_.reward,
                                       &breakdown);
  ag::Var loss = ag::Neg(reward);
  ag::Backward(loss);
  optimizer_->ClipGradNorm(config_.grad_clip);
  optimizer_->Step();

  // Refresh the portfolio vector memory with the new actions.
  for (int64_t b = 0; b < batch; ++b) {
    std::vector<double> action(num_assets_ + 1);
    for (int64_t i = 0; i <= num_assets_; ++i) {
      action[i] = actions->value()[b * (num_assets_ + 1) + i];
    }
    pvm_.Set(t0 + b, std::move(action));
  }
  if (obs::Enabled()) {
    static thread_local obs::Counter& steps =
        obs::GetCounter("trainer.steps");
    steps.Add(1.0);
    // The ring is keyed by the trainer's seed, which derives from the cell
    // key in sweeps — so the merged profile names traces deterministically
    // regardless of which worker ran the cell.
    obs::GetTraceRing(
            "trainer.reward.seed" + std::to_string(config_.seed),
            {{"total", "log_return", "variance", "turnover"}})
        .Append(steps_done_, breakdown.total, breakdown.mean_log_return,
                breakdown.variance, breakdown.mean_turnover);
  }
  ++steps_done_;
  return breakdown.total;
}

double PolicyGradientTrainer::Train() {
  const int64_t tail_start = config_.steps - std::max<int64_t>(
      config_.steps / 10, 1);
  double tail_sum = 0.0;
  int64_t tail_count = 0;
  for (int64_t step = 0; step < config_.steps; ++step) {
    const double reward = TrainStep();
    if (step >= tail_start) {
      tail_sum += reward;
      ++tail_count;
    }
  }
  return tail_count > 0 ? tail_sum / tail_count : 0.0;
}

}  // namespace ppn::core
