#ifndef PPN_PPN_REWARD_H_
#define PPN_PPN_REWARD_H_

#include <vector>

#include "autograd/ops.h"
#include "backtest/costs.h"

/// \file
/// The cost-sensitive reward (paper Eq. 1):
///
///   R = 1/T Σ r̂ᶜ_t  -  λ σ²(r̂ᶜ_t)  -  γ/T Σ ‖a_t - â_{t-1}‖₁
///
/// with r̂ᶜ_t = log(a_tᵀ x_t · ω_t). The net-wealth factor ω_t is solved
/// exactly from the transaction-cost fixed point; the cost then enters the
/// graph as the differentiable c_t(a) = ψ‖a_t ω̄_t − â_{t-1}‖₁ (risk
/// assets) with ω̄_t held constant — value-identical to ω_t at the fixed
/// point, and its gradient carries ψ-scaled trading pressure in addition
/// to the explicit γ‖a_t - â_{t-1}‖₁ constraint term.

namespace ppn::core {

/// Trade-off hyperparameters and the cost rate ψ.
struct RewardConfig {
  double lambda = 1e-4;      ///< Risk-penalty weight λ.
  double gamma = 1e-3;       ///< Transaction-cost-constraint weight γ.
  double cost_rate = 0.0025; ///< Proportional cost rate ψ (both sides).
  /// When true (the cost-sensitive design), c_t enters the graph as the
  /// differentiable ψ‖a_t ω̄_t − â_{t-1}‖₁; when false the cost is a
  /// stop-gradient log ω_t factor — the plain rebalanced-log-return
  /// objective the EIIE baseline optimizes.
  bool differentiable_cost = true;

  /// Checks λ ≥ 0, γ ≥ 0 and ψ ∈ [0, 1); aborts with a message on
  /// violation. Called by every trainer at construction.
  void Validate() const;
};

/// Constant (non-differentiated) per-period context of a reward evaluation.
struct RewardInputs {
  /// [T, m+1] price relatives x_t with cash at column 0.
  Tensor relatives;
  /// [T, m+1] drifted previous portfolios â_{t-1}.
  Tensor prev_hat;
};

/// Detailed reward decomposition (values only, for logging/tests).
struct RewardBreakdown {
  double mean_log_return = 0.0;
  double variance = 0.0;
  double mean_turnover = 0.0;
  double total = 0.0;
  /// Total cost-solver fixed-point iterations across the batch's periods
  /// (telemetry: a drift upward means actions are moving further from
  /// â_{t-1} and the ω_t solve is working harder).
  int64_t solver_iterations = 0;
};

/// Builds the scalar reward node from the policy's batched actions
/// [T, m+1]. If `breakdown` / `omegas` are non-null they receive the value
/// decomposition and the solved ω_t per period.
ag::Var CostSensitiveReward(const ag::Var& actions, const RewardInputs& inputs,
                            const RewardConfig& config,
                            RewardBreakdown* breakdown = nullptr,
                            std::vector<double>* omegas = nullptr);

}  // namespace ppn::core

#endif  // PPN_PPN_REWARD_H_
