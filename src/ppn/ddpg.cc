#include "ppn/ddpg.h"

#include <chrono>
#include <cmath>

#include "backtest/costs.h"
#include "ckpt/state_io.h"
#include "common/check.h"
#include "obs/trace.h"

namespace ppn::core {

namespace {

Conv2dGeometry Valid1x3Geometry() {
  Conv2dGeometry g;
  g.kernel_h = 1;
  g.kernel_w = 3;
  return g;
}

}  // namespace

// ------------------------------------------------------ CriticNetwork ----

CriticNetwork::CriticNetwork(const PolicyConfig& config, Rng* init_rng)
    : config_(config) {
  const int64_t m = config.num_assets;
  conv1_ = std::make_unique<nn::Conv2dLayer>(
      market::kNumPriceFields, config.block1_channels, Valid1x3Geometry(),
      init_rng);
  conv2_ = std::make_unique<nn::Conv2dLayer>(
      config.block1_channels, config.block2_channels,
      nn::TimeCollapseConvGeometry(config.window - 2), init_rng);
  state_features_ = config.block2_channels * m;
  const int64_t hidden = 64;
  value_hidden_ = std::make_unique<nn::Linear>(state_features_, hidden,
                                               init_rng);
  value_head_ = std::make_unique<nn::Linear>(hidden, 1, init_rng);
  advantage_hidden_ = std::make_unique<nn::Linear>(
      state_features_ + m + (m + 1), hidden, init_rng);
  advantage_head_ = std::make_unique<nn::Linear>(hidden, 1, init_rng);
  RegisterSubmodule("conv1", conv1_.get());
  RegisterSubmodule("conv2", conv2_.get());
  RegisterSubmodule("value_hidden", value_hidden_.get());
  RegisterSubmodule("value_head", value_head_.get());
  RegisterSubmodule("advantage_hidden", advantage_hidden_.get());
  RegisterSubmodule("advantage_head", advantage_head_.get());
}

ag::Var CriticNetwork::Forward(const ag::Var& windows,
                               const ag::Var& prev_actions,
                               const ag::Var& actions) const {
  const int64_t batch = windows->value().dim(0);
  ag::Var conv_input = ag::Permute4(windows, {0, 3, 1, 2});
  ag::Var h = ag::Relu(conv1_->Forward(conv_input));
  h = ag::Relu(conv2_->Forward(h));  // [B, C2, m, 1].
  ag::Var state = ag::Reshape(h, {batch, state_features_});
  // Dueling-style split: V(s) + A(s, a_{t-1}, a).
  ag::Var value =
      value_head_->Forward(ag::Relu(value_hidden_->Forward(state)));
  ag::Var advantage_input =
      ag::ConcatVars({state, prev_actions, actions}, 1);
  ag::Var advantage = advantage_head_->Forward(
      ag::Relu(advantage_hidden_->Forward(advantage_input)));
  return ag::Add(value, advantage);
}

// -------------------------------------------------------- DdpgTrainer ----

void DdpgConfig::Validate() const {
  PPN_CHECK_GT(steps, 0);
  PPN_CHECK_GT(batch_size, 0);
  PPN_CHECK_GE(warmup, 0);
  PPN_CHECK_GE(buffer_capacity, batch_size)
      << "replay buffer smaller than a minibatch";
  PPN_CHECK_GT(actor_lr, 0.0f);
  PPN_CHECK_GT(critic_lr, 0.0f);
  PPN_CHECK(tau > 0.0f && tau <= 1.0f) << "tau out of (0, 1]: " << tau;
  PPN_CHECK(discount >= 0.0f && discount <= 1.0f)
      << "discount out of [0, 1]: " << discount;
  PPN_CHECK(explore_start >= 0.0 && explore_start <= 1.0);
  PPN_CHECK(explore_end >= 0.0 && explore_end <= 1.0);
  PPN_CHECK(cost_rate >= 0.0 && cost_rate < 1.0)
      << "cost_rate out of [0, 1): " << cost_rate;
}

DdpgTrainer::DdpgTrainer(PolicyModule* actor,
                         const market::MarketDataset& dataset,
                         DdpgConfig config)
    : actor_(actor),
      config_(std::move(config)),
      num_assets_(actor->config().num_assets),
      window_(actor->config().window),
      first_period_(actor->config().window),
      last_period_(dataset.train_end),
      rng_(config_.seed),
      dropout_rng_(config_.seed ^ 0xD00DULL),
      env_period_(actor->config().window),
      previous_action_(actor->config().num_assets + 1,
                       1.0 / (actor->config().num_assets + 1)) {
  config_.Validate();
  PPN_CHECK(actor != nullptr);
  PPN_CHECK_EQ(dataset.panel.num_assets(), num_assets_);
  PPN_CHECK_GT(last_period_ - first_period_, 2);

  Rng init_rng(config_.seed ^ 0xC417ULL);
  critic_ = std::make_unique<CriticNetwork>(actor->config(), &init_rng);
  target_actor_ = MakePolicy(actor->config(), &init_rng, &dropout_rng_);
  target_critic_ = std::make_unique<CriticNetwork>(actor->config(), &init_rng);
  target_actor_->CopyParametersFrom(*actor_);
  target_critic_->CopyParametersFrom(*critic_);
  target_actor_->SetTraining(false);
  target_critic_->SetTraining(false);

  actor_optimizer_ =
      std::make_unique<nn::Adam>(actor_->Parameters(), config_.actor_lr);
  critic_optimizer_ =
      std::make_unique<nn::Adam>(critic_->Parameters(), config_.critic_lr);

  windows_.reserve(last_period_ - first_period_);
  for (int64_t t = first_period_; t < last_period_; ++t) {
    windows_.push_back(market::NormalizedWindow(dataset.panel, t - 1, window_));
  }
  relatives_.resize(last_period_);
  for (int64_t t = 1; t < last_period_; ++t) {
    relatives_[t] = market::PriceRelativesWithCash(dataset.panel, t);
  }
}

DdpgTrainer::~DdpgTrainer() = default;

Tensor DdpgTrainer::WindowsFor(const std::vector<int64_t>& periods) const {
  const int64_t batch = static_cast<int64_t>(periods.size());
  Tensor out({batch, num_assets_, window_, market::kNumPriceFields});
  const int64_t per_window = num_assets_ * window_ * market::kNumPriceFields;
  float* po = out.MutableData();
  for (int64_t b = 0; b < batch; ++b) {
    const Tensor& w = windows_[periods[b] - first_period_];
    for (int64_t i = 0; i < per_window; ++i) po[b * per_window + i] = w[i];
  }
  return out;
}

Tensor DdpgTrainer::PrevRiskFor(
    const std::vector<const Transition*>& batch) const {
  Tensor out({static_cast<int64_t>(batch.size()), num_assets_});
  float* po = out.MutableData();
  for (size_t b = 0; b < batch.size(); ++b) {
    for (int64_t i = 0; i < num_assets_; ++i) {
      po[b * num_assets_ + i] = static_cast<float>(batch[b]->prev[i + 1]);
    }
  }
  return out;
}

void DdpgTrainer::LearnStep() {
  const int64_t available = static_cast<int64_t>(buffer_.size());
  const int64_t batch_size = std::min(config_.batch_size, available);
  std::vector<const Transition*> batch;
  batch.reserve(batch_size);
  for (int64_t i = 0; i < batch_size; ++i) {
    batch.push_back(&buffer_[rng_.UniformInt(available)]);
  }

  std::vector<int64_t> periods(batch_size);
  for (int64_t b = 0; b < batch_size; ++b) periods[b] = batch[b]->period;
  Tensor state_windows = WindowsFor(periods);
  Tensor prev_risk = PrevRiskFor(batch);
  Tensor actions({batch_size, num_assets_ + 1});
  for (int64_t b = 0; b < batch_size; ++b) {
    for (int64_t i = 0; i <= num_assets_; ++i) {
      actions.MutableData()[b * (num_assets_ + 1) + i] =
          static_cast<float>(batch[b]->action[i]);
    }
  }

  // --- Targets y = r + γ Q'(s', μ'(s')). --------------------------------
  Tensor targets({batch_size, 1});
  {
    std::vector<int64_t> next_periods;
    std::vector<int64_t> next_rows;
    for (int64_t b = 0; b < batch_size; ++b) {
      if (batch[b]->has_next) {
        next_periods.push_back(batch[b]->period + 1);
        next_rows.push_back(b);
      }
    }
    std::vector<double> bootstrap(batch_size, 0.0);
    if (!next_periods.empty()) {
      Tensor next_windows = WindowsFor(next_periods);
      Tensor next_prev(
          {static_cast<int64_t>(next_periods.size()), num_assets_});
      for (size_t r = 0; r < next_rows.size(); ++r) {
        const Transition* tr = batch[next_rows[r]];
        for (int64_t i = 0; i < num_assets_; ++i) {
          next_prev.MutableData()[r * num_assets_ + i] =
              static_cast<float>(tr->action[i + 1]);
        }
      }
      ag::Var next_w = ag::Constant(next_windows);
      ag::Var next_p = ag::Constant(next_prev);
      ag::Var next_actions = target_actor_->Forward(next_w, next_p);
      ag::Var next_q = target_critic_->Forward(next_w, next_p,
                                               ag::Detach(next_actions));
      for (size_t r = 0; r < next_rows.size(); ++r) {
        bootstrap[next_rows[r]] = next_q->value()[r];
      }
    }
    for (int64_t b = 0; b < batch_size; ++b) {
      targets.MutableData()[b] = static_cast<float>(
          batch[b]->reward + config_.discount * bootstrap[b]);
    }
  }

  // --- Critic regression. ----------------------------------------------
  critic_->SetTraining(true);
  critic_->ZeroGrad();
  {
    ag::Var q = critic_->Forward(ag::Constant(state_windows),
                                 ag::Constant(prev_risk),
                                 ag::Constant(actions));
    ag::Var error = ag::Sub(q, ag::Constant(targets));
    ag::Var loss = ag::MeanAll(ag::Mul(error, error));
    ag::Backward(loss);
    critic_optimizer_->ClipGradNorm(5.0);
    critic_optimizer_->Step();
  }

  // --- Actor ascent on Q. ----------------------------------------------
  actor_->SetTraining(true);
  actor_->ZeroGrad();
  critic_->ZeroGrad();
  {
    ag::Var w = ag::Constant(state_windows);
    ag::Var p = ag::Constant(prev_risk);
    ag::Var a = actor_->Forward(w, p);
    ag::Var q = critic_->Forward(w, p, a);
    ag::Var loss = ag::Neg(ag::MeanAll(q));
    ag::Backward(loss);
    last_actor_grad_norm_ = actor_optimizer_->ClipGradNorm(5.0);
    actor_optimizer_->Step();
  }

  target_actor_->PolyakUpdateFrom(*actor_, config_.tau);
  target_critic_->PolyakUpdateFrom(*critic_, config_.tau);
}

double DdpgTrainer::TrainStep() {
  obs::Span step_span("ddpg.step");
  step_span.AddArg("step", static_cast<double>(steps_done_));
  const bool logging = run_log_ != nullptr;
  const auto step_start = logging ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  const backtest::CostModel costs =
      backtest::CostModel::Uniform(config_.cost_rate);
  const int64_t step = steps_done_;
  const int64_t t = env_period_;

  // --- Environment step with exploration. ------------------------------
  actor_->SetTraining(false);
  Tensor w = WindowsFor({t});
  Tensor prev({1, num_assets_});
  for (int64_t i = 0; i < num_assets_; ++i) {
    prev.MutableData()[i] = static_cast<float>(previous_action_[i + 1]);
  }
  ag::Var policy_action =
      actor_->Forward(ag::Constant(w), ag::Constant(prev));
  const double progress =
      static_cast<double>(step) / std::max<int64_t>(config_.steps - 1, 1);
  const double epsilon = config_.explore_start +
                         (config_.explore_end - config_.explore_start) *
                             progress;
  const std::vector<double> noise =
      rng_.Dirichlet(static_cast<int>(num_assets_) + 1, 0.5);
  std::vector<double> action(num_assets_ + 1);
  double total = 0.0;
  for (int64_t i = 0; i <= num_assets_; ++i) {
    action[i] = (1.0 - epsilon) * policy_action->value()[i] +
                epsilon * noise[i];
    total += action[i];
  }
  for (double& v : action) v /= total;

  std::vector<double> prev_hat = previous_action_;
  if (t >= 2) {
    prev_hat = backtest::DriftPortfolio(previous_action_, relatives_[t - 1]);
  }
  const backtest::NetWealthSolve solve =
      backtest::SolveNetWealthFactorDetailed(prev_hat, action, costs);
  PPN_CHECK(solve.converged)
      << "net-wealth fixed point did not converge after " << solve.iterations
      << " iterations";
  const double omega = solve.omega;
  double gross = 0.0;
  for (int64_t i = 0; i <= num_assets_; ++i) {
    gross += action[i] * relatives_[t][i];
  }
  const double reward = std::log(gross * omega);
  const int64_t tail_start =
      config_.steps - std::max<int64_t>(config_.steps / 10, 1);
  if (step >= tail_start && step < config_.steps) {
    tail_sum_ += reward;
    ++tail_count_;
  }

  Transition transition;
  transition.period = t;
  transition.prev = previous_action_;
  transition.action = action;
  transition.reward = reward;
  transition.has_next = (t + 1) < last_period_;
  if (static_cast<int64_t>(buffer_.size()) < config_.buffer_capacity) {
    buffer_.push_back(std::move(transition));
  } else {
    buffer_[buffer_next_ % config_.buffer_capacity] = std::move(transition);
  }
  ++buffer_next_;

  previous_action_ = action;
  ++env_period_;
  if (env_period_ >= last_period_) {
    env_period_ = first_period_;
    previous_action_.assign(num_assets_ + 1, 1.0 / (num_assets_ + 1));
  }

  // --- Learning. --------------------------------------------------------
  if (static_cast<int64_t>(buffer_.size()) >= config_.warmup) {
    LearnStep();
  }
  step_span.AddArg("reward", reward);
  if (logging) {
    obs::RunLogRecord record;
    record.step = steps_done_;
    record.reward_total = reward;
    record.reward_log_return = reward;
    record.grad_norm = last_actor_grad_norm_;
    record.solver_iterations = static_cast<double>(solve.iterations);
    record.step_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - step_start)
                              .count();
    run_log_->Append(record);
  }
  ++steps_done_;
  return reward;
}

double DdpgTrainer::Train() {
  while (steps_done_ < config_.steps) TrainStep();
  return tail_mean();
}

void DdpgTrainer::SaveState(ckpt::CheckpointWriter* writer,
                            const Rng* actor_dropout_rng) const {
  PPN_CHECK(writer != nullptr);
  writer->BeginSection("actor");
  actor_->SaveState(&writer->writer());
  writer->BeginSection("critic");
  critic_->SaveState(&writer->writer());
  writer->BeginSection("target_actor");
  target_actor_->SaveState(&writer->writer());
  writer->BeginSection("target_critic");
  target_critic_->SaveState(&writer->writer());
  writer->BeginSection("actor_opt");
  actor_optimizer_->SaveState(&writer->writer());
  writer->BeginSection("critic_opt");
  critic_optimizer_->SaveState(&writer->writer());

  writer->BeginSection("rng");
  ckpt::WriteRng(&writer->writer(), rng_);
  ckpt::WriteRng(&writer->writer(), dropout_rng_);
  writer->writer().WriteU8(actor_dropout_rng != nullptr ? 1 : 0);
  if (actor_dropout_rng != nullptr) {
    ckpt::WriteRng(&writer->writer(), *actor_dropout_rng);
  }

  writer->BeginSection("buffer");
  writer->writer().WriteI64(buffer_next_);
  writer->writer().WriteI64(static_cast<int64_t>(buffer_.size()));
  for (const Transition& tr : buffer_) {
    writer->writer().WriteI64(tr.period);
    ckpt::WriteDoubleVector(&writer->writer(), tr.prev);
    ckpt::WriteDoubleVector(&writer->writer(), tr.action);
    writer->writer().WriteF64(tr.reward);
    writer->writer().WriteU8(tr.has_next ? 1 : 0);
  }

  writer->BeginSection("trainer");
  writer->writer().WriteI64(config_.batch_size);
  writer->writer().WriteI64(config_.steps);
  writer->writer().WriteU64(config_.seed);
  writer->writer().WriteI64(env_period_);
  ckpt::WriteDoubleVector(&writer->writer(), previous_action_);
  writer->writer().WriteI64(steps_done_);
  writer->writer().WriteF64(tail_sum_);
  writer->writer().WriteI64(tail_count_);
}

bool DdpgTrainer::LoadState(ckpt::CheckpointReader* reader,
                            Rng* actor_dropout_rng, std::string* error) {
  PPN_CHECK(reader != nullptr);
  PPN_CHECK(error != nullptr);
  struct NamedModule {
    const char* section;
    nn::Module* module;
  };
  const NamedModule modules[] = {
      {"actor", actor_},
      {"critic", critic_.get()},
      {"target_actor", target_actor_.get()},
      {"target_critic", target_critic_.get()},
  };
  for (const NamedModule& m : modules) {
    if (!reader->EnterSection(m.section, error)) return false;
    if (!m.module->LoadState(&reader->reader(), error)) {
      *error = std::string(m.section) + ": " + *error;
      return false;
    }
  }
  if (!reader->EnterSection("actor_opt", error)) return false;
  if (!actor_optimizer_->LoadState(&reader->reader(), error)) return false;
  if (!reader->EnterSection("critic_opt", error)) return false;
  if (!critic_optimizer_->LoadState(&reader->reader(), error)) return false;

  if (!reader->EnterSection("rng", error)) return false;
  uint8_t has_actor_dropout = 0;
  if (!ckpt::ReadRng(&reader->reader(), &rng_) ||
      !ckpt::ReadRng(&reader->reader(), &dropout_rng_) ||
      !reader->reader().ReadU8(&has_actor_dropout)) {
    *error = "ddpg state: short read in rng section";
    return false;
  }
  if ((has_actor_dropout != 0) != (actor_dropout_rng != nullptr)) {
    *error = has_actor_dropout != 0
                 ? "ddpg state: checkpoint has an actor dropout rng stream "
                   "but none was supplied"
                 : "ddpg state: actor dropout rng supplied but the "
                   "checkpoint has no stream for it";
    return false;
  }
  if (actor_dropout_rng != nullptr &&
      !ckpt::ReadRng(&reader->reader(), actor_dropout_rng)) {
    *error = "ddpg state: short read in actor dropout rng stream";
    return false;
  }

  if (!reader->EnterSection("buffer", error)) return false;
  int64_t buffer_next = 0;
  int64_t buffer_size = 0;
  if (!reader->reader().ReadI64(&buffer_next) ||
      !reader->reader().ReadI64(&buffer_size)) {
    *error = "ddpg state: short read in buffer header";
    return false;
  }
  if (buffer_size < 0 || buffer_size > config_.buffer_capacity ||
      buffer_next < buffer_size) {
    *error = "ddpg state: implausible replay buffer header";
    return false;
  }
  std::vector<Transition> buffer(static_cast<size_t>(buffer_size));
  for (Transition& tr : buffer) {
    uint8_t has_next = 0;
    if (!reader->reader().ReadI64(&tr.period) ||
        !ckpt::ReadDoubleVector(&reader->reader(), &tr.prev) ||
        !ckpt::ReadDoubleVector(&reader->reader(), &tr.action) ||
        !reader->reader().ReadF64(&tr.reward) ||
        !reader->reader().ReadU8(&has_next)) {
      *error = "ddpg state: short read in replay buffer";
      return false;
    }
    if (tr.prev.size() != static_cast<size_t>(num_assets_) + 1 ||
        tr.action.size() != static_cast<size_t>(num_assets_) + 1) {
      *error = "ddpg state: replay transition dimension mismatch";
      return false;
    }
    tr.has_next = has_next != 0;
  }

  if (!reader->EnterSection("trainer", error)) return false;
  int64_t batch_size = 0;
  int64_t steps = 0;
  uint64_t seed = 0;
  int64_t env_period = 0;
  std::vector<double> previous_action;
  int64_t steps_done = 0;
  double tail_sum = 0.0;
  int64_t tail_count = 0;
  if (!reader->reader().ReadI64(&batch_size) ||
      !reader->reader().ReadI64(&steps) || !reader->reader().ReadU64(&seed) ||
      !reader->reader().ReadI64(&env_period) ||
      !ckpt::ReadDoubleVector(&reader->reader(), &previous_action) ||
      !reader->reader().ReadI64(&steps_done) ||
      !reader->reader().ReadF64(&tail_sum) ||
      !reader->reader().ReadI64(&tail_count)) {
    *error = "ddpg state: short read in trainer section";
    return false;
  }
  if (batch_size != config_.batch_size || steps != config_.steps ||
      seed != config_.seed) {
    *error = "ddpg state: config mismatch (checkpoint written with "
             "batch_size=" +
             std::to_string(batch_size) + " steps=" + std::to_string(steps) +
             " seed=" + std::to_string(seed) + ")";
    return false;
  }
  if (env_period < first_period_ || env_period >= last_period_ ||
      previous_action.size() != static_cast<size_t>(num_assets_) + 1 ||
      steps_done < 0 || steps_done > config_.steps || tail_count < 0) {
    *error = "ddpg state: implausible trainer counters";
    return false;
  }
  buffer_ = std::move(buffer);
  buffer_next_ = buffer_next;
  env_period_ = env_period;
  previous_action_ = std::move(previous_action);
  steps_done_ = steps_done;
  tail_sum_ = tail_sum;
  tail_count_ = tail_count;
  return reader->Finish(error);
}

}  // namespace ppn::core
