#ifndef PPN_PPN_CONFIG_H_
#define PPN_PPN_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Configuration of the portfolio policy network and its variants
/// (paper Table 2 and Section 6.3).

namespace ppn::core {

/// Feature-extraction variants of the policy (paper Table 4).
enum class PolicyVariant {
  kPpn,          ///< Two streams: LSTM + TCCB correlation net (the paper).
  kPpnI,         ///< Two streams: LSTM + TCB (no correlational convs).
  kPpnLstm,      ///< Sequential information net only.
  kPpnTcb,       ///< TCB correlation-free conv net only.
  kPpnTccb,      ///< TCCB correlation net only.
  kPpnTcbLstm,   ///< Cascade: TCB features fed through an LSTM.
  kPpnTccbLstm,  ///< Cascade: TCCB features fed through an LSTM.
  kEiie,         ///< The EIIE baseline topology (Jiang et al. 2017).
};

/// All seven PPN-family variants in the paper's Table-4 row order.
std::vector<PolicyVariant> Table4Variants();

/// Display name ("PPN", "PPN-I", "PPN-LSTM", ...).
std::string VariantName(PolicyVariant variant);

/// Inverse of `VariantName` (case-sensitive). Returns false for unknown
/// names; `*variant` is untouched on failure.
bool VariantFromName(const std::string& name, PolicyVariant* variant);

/// True when the variant mixes information across assets (uses CCONV).
bool UsesAssetCorrelation(PolicyVariant variant);

/// Network hyperparameters (defaults are the paper's).
struct PolicyConfig {
  PolicyVariant variant = PolicyVariant::kPpn;
  int64_t num_assets = 12;       ///< m (risk assets).
  int64_t window = 30;           ///< k: periods in the input window.
  int64_t lstm_hidden = 16;      ///< Sequential net hidden size.
  int64_t block1_channels = 8;   ///< TCCB1 channels.
  int64_t block2_channels = 16;  ///< TCCB2/TCCB3 channels.
  float dropout = 0.2f;          ///< Dropout rate in conv blocks.
  float cash_bias = 0.0f;        ///< Fixed cash-row bias value.
  /// Input preprocessing applied by every policy: windows enter as prices
  /// normalized by the last period (values near 1); the nets consume
  /// (x - 1) * input_scale so the planted ±1% movements produce O(0.1)
  /// activations. Pure re-parameterization of the paper's input (the first
  /// conv/LSTM layer could absorb it); it buys faster convergence at the
  /// reduced CPU training budgets.
  float input_scale = 10.0f;
  uint64_t seed = 1;             ///< Weight-init seed.
};

}  // namespace ppn::core

#endif  // PPN_PPN_CONFIG_H_
