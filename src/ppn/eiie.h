#ifndef PPN_PPN_EIIE_H_
#define PPN_PPN_EIIE_H_

#include <memory>

#include "nn/conv.h"
#include "nn/linear.h"
#include "ppn/policy_module.h"

/// \file
/// EIIE baseline (Jiang, Xu & Liang 2017): the "ensemble of identical
/// independent evaluators" CNN the paper compares against. Per-asset
/// convolutions only (no cross-asset mixing), previous action appended
/// before the final 1×1 voting convolution, softmax with a cash bias.

namespace ppn::core {

/// EIIE topology: conv[1×3] → ReLU → conv[1×(k-2)] (collapses time) → ReLU
/// → concat prev action → 1×1 conv → cash bias row → softmax.
class EiieNetwork : public PolicyModule {
 public:
  EiieNetwork(const PolicyConfig& config, Rng* init_rng);

  ag::Var Forward(const ag::Var& windows,
                  const ag::Var& prev_actions) override;

  const PolicyConfig& config() const override { return config_; }

 private:
  PolicyConfig config_;
  int64_t hidden_channels_;
  std::unique_ptr<nn::Conv2dLayer> conv1_;
  std::unique_ptr<nn::Conv2dLayer> conv2_;
  std::unique_ptr<nn::Linear> decision_;
};

}  // namespace ppn::core

#endif  // PPN_PPN_EIIE_H_
