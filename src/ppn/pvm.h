#ifndef PPN_PPN_PVM_H_
#define PPN_PPN_PVM_H_

#include <cstdint>
#include <vector>

/// \file
/// Portfolio vector memory (Jiang et al. 2017, adopted by the paper's
/// online stochastic batch training, Remark 3): a per-period store of the
/// most recent action taken at that period, so randomly sampled batches
/// can feed the recursive a_{t-1} input without replaying the whole
/// history.

namespace ppn::core {

/// Stores one (m+1)-dim portfolio per trading period.
class PortfolioVectorMemory {
 public:
  /// Creates memory for `num_periods` periods, initialized to the uniform
  /// portfolio over the m risk assets (cash weight 0).
  PortfolioVectorMemory(int64_t num_periods, int64_t num_assets);

  /// Action recorded for period `t`.
  const std::vector<double>& Get(int64_t t) const;

  /// Overwrites the action for period `t`; must be (m+1)-dim.
  void Set(int64_t t, std::vector<double> action);

  int64_t num_periods() const {
    return static_cast<int64_t>(actions_.size());
  }
  int64_t num_assets() const { return num_assets_; }

 private:
  int64_t num_assets_;
  std::vector<std::vector<double>> actions_;
};

}  // namespace ppn::core

#endif  // PPN_PPN_PVM_H_
