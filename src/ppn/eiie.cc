#include "ppn/eiie.h"

#include "common/check.h"
#include "market/dataset.h"
#include "ppn/policy_network.h"

namespace ppn::core {

namespace {

// conv[1×3] along time, VALID padding (EIIE uses no padding).
Conv2dGeometry Valid1x3() {
  Conv2dGeometry g;
  g.kernel_h = 1;
  g.kernel_w = 3;
  return g;
}

}  // namespace

EiieNetwork::EiieNetwork(const PolicyConfig& config, Rng* init_rng)
    : config_(config), hidden_channels_(config.block2_channels) {
  PPN_CHECK_GE(config.window, 4);
  conv1_ = std::make_unique<nn::Conv2dLayer>(
      market::kNumPriceFields, config.block1_channels, Valid1x3(), init_rng);
  conv2_ = std::make_unique<nn::Conv2dLayer>(
      config.block1_channels, hidden_channels_,
      nn::TimeCollapseConvGeometry(config.window - 2), init_rng);
  // +1 feature column for the previous action. Bias-free: a shared logit
  // bias cancels in the softmax.
  decision_ = std::make_unique<nn::Linear>(hidden_channels_ + 1, 1, init_rng,
                                           /*use_bias=*/false);
  RegisterSubmodule("conv1", conv1_.get());
  RegisterSubmodule("conv2", conv2_.get());
  RegisterSubmodule("decision", decision_.get());
}

ag::Var EiieNetwork::Forward(const ag::Var& windows,
                             const ag::Var& prev_actions) {
  const int64_t batch = windows->value().dim(0);
  const int64_t m = config_.num_assets;
  PPN_CHECK_EQ(windows->value().dim(1), m);
  PPN_CHECK_EQ(windows->value().dim(2), config_.window);

  // Same input centering as the PPN variants (see PolicyConfig).
  ag::Var centered =
      ag::MulScalar(ag::AddScalar(windows, -1.0f), config_.input_scale);
  ag::Var conv_input = ag::Permute4(centered, {0, 3, 1, 2});  // [B,4,m,k].
  ag::Var h = ag::Relu(conv1_->Forward(conv_input));         // [B,C1,m,k-2].
  h = ag::Relu(conv2_->Forward(h));                          // [B,C2,m,1].
  ag::Var per_asset = ag::Reshape(ag::Permute4(h, {0, 2, 3, 1}),
                                  {batch, m, hidden_channels_});
  ag::Var prev_column = ag::Reshape(prev_actions, {batch, m, 1});
  ag::Var features = ag::ConcatVars({per_asset, prev_column}, 2);
  ag::Var cash_row = ag::Constant(
      Tensor::Full({batch, 1, hidden_channels_ + 1}, config_.cash_bias));
  ag::Var full = ag::ConcatVars({cash_row, features}, 1);
  ag::Var flat = ag::Reshape(full, {batch * (m + 1), hidden_channels_ + 1});
  ag::Var logits = ag::Reshape(decision_->Forward(flat), {batch, m + 1});
  return ag::SoftmaxRows(logits);
}

std::unique_ptr<PolicyModule> MakePolicy(const PolicyConfig& config,
                                         Rng* init_rng, Rng* dropout_rng) {
  if (config.variant == PolicyVariant::kEiie) {
    return std::make_unique<EiieNetwork>(config, init_rng);
  }
  // Defined in policy_network.cc; included via policy_module.h factory.
  return std::make_unique<PolicyNetwork>(config, init_rng, dropout_rng);
}

}  // namespace ppn::core
