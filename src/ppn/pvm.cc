#include "ppn/pvm.h"

#include "common/check.h"

namespace ppn::core {

PortfolioVectorMemory::PortfolioVectorMemory(int64_t num_periods,
                                             int64_t num_assets)
    : num_assets_(num_assets) {
  PPN_CHECK_GT(num_periods, 0);
  PPN_CHECK_GT(num_assets, 0);
  std::vector<double> uniform(num_assets + 1, 0.0);
  for (int64_t i = 1; i <= num_assets; ++i) {
    uniform[i] = 1.0 / static_cast<double>(num_assets);
  }
  actions_.assign(num_periods, uniform);
}

const std::vector<double>& PortfolioVectorMemory::Get(int64_t t) const {
  PPN_CHECK(t >= 0 && t < num_periods());
  return actions_[t];
}

void PortfolioVectorMemory::Set(int64_t t, std::vector<double> action) {
  PPN_CHECK(t >= 0 && t < num_periods());
  PPN_CHECK_EQ(action.size(), static_cast<size_t>(num_assets_ + 1));
  actions_[t] = std::move(action);
}

}  // namespace ppn::core
