#include "ppn/policy_network.h"

#include "common/check.h"

namespace ppn::core {

PolicyNetwork::PolicyNetwork(const PolicyConfig& config, Rng* init_rng,
                             Rng* dropout_rng)
    : config_(config) {
  PPN_CHECK(config.variant != PolicyVariant::kEiie)
      << "use EiieNetwork for the EIIE topology";
  const bool correlational = UsesAssetCorrelation(config.variant);
  int64_t stream_features = 0;
  switch (config.variant) {
    case PolicyVariant::kPpn:
    case PolicyVariant::kPpnI:
      sequential_net_ = std::make_unique<SequentialInfoNet>(config, init_rng);
      correlation_net_ = std::make_unique<CorrelationInfoNet>(
          config, correlational, init_rng, dropout_rng);
      RegisterSubmodule("sequential", sequential_net_.get());
      RegisterSubmodule("correlation", correlation_net_.get());
      stream_features = sequential_net_->feature_size() +
                        correlation_net_->feature_size();
      break;
    case PolicyVariant::kPpnLstm:
      sequential_net_ = std::make_unique<SequentialInfoNet>(config, init_rng);
      RegisterSubmodule("sequential", sequential_net_.get());
      stream_features = sequential_net_->feature_size();
      break;
    case PolicyVariant::kPpnTcb:
    case PolicyVariant::kPpnTccb:
      correlation_net_ = std::make_unique<CorrelationInfoNet>(
          config, correlational, init_rng, dropout_rng);
      RegisterSubmodule("correlation", correlation_net_.get());
      stream_features = correlation_net_->feature_size();
      break;
    case PolicyVariant::kPpnTcbLstm:
    case PolicyVariant::kPpnTccbLstm:
      correlation_net_ = std::make_unique<CorrelationInfoNet>(
          config, correlational, init_rng, dropout_rng,
          /*collapse_time=*/false);
      cascade_lstm_ = std::make_unique<nn::Lstm>(
          correlation_net_->sequence_channels(), config.lstm_hidden, init_rng);
      RegisterSubmodule("correlation", correlation_net_.get());
      RegisterSubmodule("cascade_lstm", cascade_lstm_.get());
      stream_features = config.lstm_hidden;
      break;
    case PolicyVariant::kEiie:
      break;  // Unreachable (checked above).
  }
  // +1 for the recursive previous-action column. The decision layer is
  // bias-free: a shared scalar bias on every logit cancels in the softmax.
  feature_size_ = stream_features + 1;
  decision_ = std::make_unique<nn::Linear>(feature_size_, 1, init_rng,
                                           /*use_bias=*/false);
  RegisterSubmodule("decision", decision_.get());
}

ag::Var PolicyNetwork::ExtractFeatures(const ag::Var& windows) const {
  switch (config_.variant) {
    case PolicyVariant::kPpn:
    case PolicyVariant::kPpnI: {
      ag::Var sequential = sequential_net_->Forward(windows);
      ag::Var correlation = correlation_net_->Forward(windows);
      return ag::ConcatVars({sequential, correlation}, 2);
    }
    case PolicyVariant::kPpnLstm:
      return sequential_net_->Forward(windows);
    case PolicyVariant::kPpnTcb:
    case PolicyVariant::kPpnTccb:
      return correlation_net_->Forward(windows);
    case PolicyVariant::kPpnTcbLstm:
    case PolicyVariant::kPpnTccbLstm: {
      const int64_t batch = windows->value().dim(0);
      ag::Var sequence = correlation_net_->ForwardSequence(windows);
      ag::Var folded = ag::Reshape(
          sequence, {batch * config_.num_assets, config_.window,
                     correlation_net_->sequence_channels()});
      ag::Var last_hidden = cascade_lstm_->ForwardLastHidden(folded);
      return ag::Reshape(last_hidden,
                         {batch, config_.num_assets, config_.lstm_hidden});
    }
    case PolicyVariant::kEiie:
      break;
  }
  PPN_CHECK(false) << "unhandled variant";
  return nullptr;
}

ag::Var PolicyNetwork::Forward(const ag::Var& windows,
                               const ag::Var& prev_actions) {
  PPN_CHECK_EQ(windows->value().ndim(), 4);
  const int64_t batch = windows->value().dim(0);
  const int64_t m = config_.num_assets;
  PPN_CHECK_EQ(windows->value().dim(1), m);
  PPN_CHECK_EQ(prev_actions->value().ndim(), 2);
  PPN_CHECK_EQ(prev_actions->value().dim(0), batch);
  PPN_CHECK_EQ(prev_actions->value().dim(1), m);

  // Center and rescale the normalized-price input (see PolicyConfig).
  ag::Var centered =
      ag::MulScalar(ag::AddScalar(windows, -1.0f), config_.input_scale);
  ag::Var features = ExtractFeatures(centered);  // [B, m, F-1].
  // Recursive mechanism: concatenate a_{t-1} as one more feature column.
  ag::Var prev_column = ag::Reshape(prev_actions, {batch, m, 1});
  ag::Var with_prev = ag::ConcatVars({features, prev_column}, 2);
  // Cash row: a fixed-bias feature row appended as asset 0' (the paper's
  // "concatenate the cash bias into all feature maps").
  ag::Var cash_row = ag::Constant(
      Tensor::Full({batch, 1, feature_size_}, config_.cash_bias));
  ag::Var full = ag::ConcatVars({cash_row, with_prev}, 1);  // [B, m+1, F].
  // Decision 1×1 conv == shared linear vote per asset row.
  ag::Var flat = ag::Reshape(full, {batch * (m + 1), feature_size_});
  ag::Var scores = decision_->Forward(flat);  // [B*(m+1), 1].
  ag::Var logits = ag::Reshape(scores, {batch, m + 1});
  return ag::SoftmaxRows(logits);
}

}  // namespace ppn::core
