#include "ppn/strategy_adapter.h"

#include "common/check.h"

namespace ppn::core {

PolicyStrategy::PolicyStrategy(PolicyModule* policy, std::string display_name)
    : policy_(policy), display_name_(std::move(display_name)) {
  PPN_CHECK(policy != nullptr);
}

void PolicyStrategy::Reset(const market::OhlcPanel& panel,
                           int64_t first_period) {
  PPN_CHECK_EQ(panel.num_assets(), policy_->config().num_assets);
  PPN_CHECK_GE(first_period, policy_->config().window)
      << display_name_ << " needs " << policy_->config().window
      << " periods of history before its first decision";
  // The backtester starts fully in cash.
  last_action_.assign(policy_->config().num_assets + 1, 0.0);
  last_action_[0] = 1.0;
  policy_->SetTraining(false);
}

std::vector<double> PolicyStrategy::Decide(
    const market::OhlcPanel& panel, int64_t period,
    const std::vector<double>& prev_hat) {
  (void)prev_hat;  // The recursive input is the raw previous action.
  const int64_t m = policy_->config().num_assets;
  const int64_t k = policy_->config().window;
  Tensor window = market::NormalizedWindow(panel, period - 1, k);
  Tensor batch_window = window.Reshaped({1, m, k, market::kNumPriceFields});
  Tensor prev({1, m});
  for (int64_t i = 0; i < m; ++i) {
    prev.MutableData()[i] = static_cast<float>(last_action_[i + 1]);
  }
  ag::Var out = policy_->Forward(ag::Constant(batch_window),
                                 ag::Constant(prev));
  std::vector<double> action(m + 1);
  for (int64_t i = 0; i <= m; ++i) action[i] = out->value()[i];
  last_action_ = action;
  return action;
}

}  // namespace ppn::core
