#include "ppn/strategy_adapter.h"

#include "common/check.h"

namespace ppn::core {

PolicyStrategy::PolicyStrategy(PolicyModule* policy, std::string display_name)
    : inference_(policy), display_name_(std::move(display_name)) {}

void PolicyStrategy::Reset(const market::OhlcPanel& panel,
                           int64_t first_period) {
  PPN_CHECK_EQ(panel.num_assets(), inference_.config().num_assets);
  PPN_CHECK_GE(first_period, inference_.config().window)
      << display_name_ << " needs " << inference_.config().window
      << " periods of history before its first decision";
  // The backtester starts fully in cash.
  last_action_.assign(inference_.config().num_assets + 1, 0.0);
  last_action_[0] = 1.0;
  inference_.EnsureEvalMode();
}

std::vector<double> PolicyStrategy::DecideWeights(
    const backtest::MarketView& view, const std::vector<double>& prev_hat) {
  (void)prev_hat;  // The recursive input is the raw previous action.
  const int64_t m = inference_.config().num_assets;
  const int64_t k = inference_.config().window;
  Tensor window = market::NormalizedWindow(view.panel, view.period - 1, k);
  Tensor batch_window = window.Reshaped({1, m, k, market::kNumPriceFields});
  Tensor prev({1, m});
  for (int64_t i = 0; i < m; ++i) {
    prev.MutableData()[i] = static_cast<float>(last_action_[i + 1]);
  }
  const Tensor out = inference_.DecideBatch(batch_window, prev);
  std::vector<double> action(m + 1);
  for (int64_t i = 0; i <= m; ++i) action[i] = out[i];
  last_action_ = action;
  return action;
}

}  // namespace ppn::core
