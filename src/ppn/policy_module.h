#ifndef PPN_PPN_POLICY_MODULE_H_
#define PPN_PPN_POLICY_MODULE_H_

#include <memory>

#include "common/random.h"
#include "nn/module.h"
#include "ppn/config.h"

/// \file
/// The interface shared by all trainable portfolio policies (PPN variants
/// and the EIIE baseline): map a batch of normalized price windows plus the
/// previous portfolio to a batch of new portfolios.

namespace ppn::core {

/// A differentiable portfolio policy π(s_t, a_{t-1}).
class PolicyModule : public nn::Module {
 public:
  /// Forward pass.
  /// \param windows [B, m, k, 4] normalized price windows.
  /// \param prev_actions [B, m] risk-asset slice of a_{t-1}.
  /// \return [B, m+1] portfolios on the simplex (cash at column 0).
  virtual ag::Var Forward(const ag::Var& windows,
                          const ag::Var& prev_actions) = 0;

  /// The configuration the policy was built with.
  virtual const PolicyConfig& config() const = 0;
};

/// Builds the policy for `config.variant` (a PPN variant or EIIE).
/// `init_rng` seeds the weights; `dropout_rng` must outlive the policy and
/// drives dropout masks during training.
std::unique_ptr<PolicyModule> MakePolicy(const PolicyConfig& config,
                                         Rng* init_rng, Rng* dropout_rng);

}  // namespace ppn::core

#endif  // PPN_PPN_POLICY_MODULE_H_
