#include "ppn/policy_inference.h"

#include "autograd/variable.h"
#include "common/check.h"
#include "market/dataset.h"

namespace ppn::core {

PolicyInference::PolicyInference(PolicyModule* policy) : policy_(policy) {
  PPN_CHECK(policy != nullptr);
  policy_->SetTraining(false);
}

const PolicyConfig& PolicyInference::config() const {
  return policy_->config();
}

void PolicyInference::EnsureEvalMode() const { policy_->SetTraining(false); }

Tensor PolicyInference::DecideBatch(const Tensor& windows,
                                    const Tensor& prev_actions) const {
  const int64_t m = policy_->config().num_assets;
  const int64_t k = policy_->config().window;
  PPN_CHECK_EQ(windows.ndim(), 4);
  const int64_t batch = windows.dim(0);
  PPN_CHECK_GT(batch, 0);
  PPN_CHECK_EQ(windows.dim(1), m);
  PPN_CHECK_EQ(windows.dim(2), k);
  PPN_CHECK_EQ(windows.dim(3), market::kNumPriceFields);
  PPN_CHECK_EQ(prev_actions.ndim(), 2);
  PPN_CHECK_EQ(prev_actions.dim(0), batch);
  PPN_CHECK_EQ(prev_actions.dim(1), m);
  ag::InferenceMode inference;
  const ag::Var out =
      policy_->Forward(ag::Constant(windows), ag::Constant(prev_actions));
  PPN_CHECK_EQ(out->shape().size(), 2u);
  PPN_CHECK_EQ(out->shape()[0], batch);
  PPN_CHECK_EQ(out->shape()[1], m + 1);
  return out->value();
}

}  // namespace ppn::core
