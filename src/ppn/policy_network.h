#ifndef PPN_PPN_POLICY_NETWORK_H_
#define PPN_PPN_POLICY_NETWORK_H_

#include <memory>

#include "nn/linear.h"
#include "ppn/feature_nets.h"
#include "ppn/policy_module.h"

/// \file
/// The portfolio policy network (paper Section 4): one or two feature
/// streams feeding the decision-making module, which concatenates the
/// recursive previous action, appends a fixed cash-bias row, and votes with
/// a 1×1 convolution followed by a softmax over the m+1 assets.

namespace ppn::core {

/// PPN and its six Table-4 variants, selected by `config.variant`.
class PolicyNetwork : public PolicyModule {
 public:
  PolicyNetwork(const PolicyConfig& config, Rng* init_rng, Rng* dropout_rng);

  ag::Var Forward(const ag::Var& windows,
                  const ag::Var& prev_actions) override;

  const PolicyConfig& config() const override { return config_; }

 private:
  /// Extracted per-asset features [B, m, F] for the active variant.
  ag::Var ExtractFeatures(const ag::Var& windows) const;

  PolicyConfig config_;
  int64_t feature_size_ = 0;  ///< F: columns entering the decision conv.

  std::unique_ptr<SequentialInfoNet> sequential_net_;
  std::unique_ptr<CorrelationInfoNet> correlation_net_;
  /// LSTM applied on top of conv features (cascaded variants only).
  std::unique_ptr<nn::Lstm> cascade_lstm_;
  /// The decision 1×1 convolution, realized as a Linear over feature rows.
  std::unique_ptr<nn::Linear> decision_;
};

}  // namespace ppn::core

#endif  // PPN_PPN_POLICY_NETWORK_H_
