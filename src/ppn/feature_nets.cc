#include "ppn/feature_nets.h"

#include "common/check.h"

namespace ppn::core {

// ------------------------------------------------- SequentialInfoNet ----

SequentialInfoNet::SequentialInfoNet(const PolicyConfig& config, Rng* rng)
    : num_assets_(config.num_assets),
      window_(config.window),
      hidden_(config.lstm_hidden),
      lstm_(market::kNumPriceFields, config.lstm_hidden, rng) {
  RegisterSubmodule("lstm", &lstm_);
}

ag::Var SequentialInfoNet::Forward(const ag::Var& windows) const {
  PPN_CHECK_EQ(windows->value().ndim(), 4);
  const int64_t batch = windows->value().dim(0);
  PPN_CHECK_EQ(windows->value().dim(1), num_assets_);
  PPN_CHECK_EQ(windows->value().dim(2), window_);
  // Fold assets into the batch dimension: the LSTM weights are shared
  // across assets and each asset's series is processed independently.
  ag::Var folded = ag::Reshape(
      windows, {batch * num_assets_, window_, market::kNumPriceFields});
  ag::Var last_hidden = lstm_.ForwardLastHidden(folded);
  return ag::Reshape(last_hidden, {batch, num_assets_, hidden_});
}

// -------------------------------------------------- TemporalConvBlock ----

TemporalConvBlock::TemporalConvBlock(int64_t in_channels, int64_t out_channels,
                                     int64_t dilation, int64_t num_assets,
                                     bool correlational, float dropout,
                                     Rng* init_rng, Rng* dropout_rng)
    : correlational_(correlational),
      dropout_(dropout),
      dropout_rng_(dropout_rng),
      dconv1_(in_channels, out_channels,
              nn::CausalTimeConvGeometry(3, dilation), init_rng),
      dconv2_(out_channels, out_channels,
              nn::CausalTimeConvGeometry(3, dilation), init_rng) {
  RegisterSubmodule("dconv1", &dconv1_);
  RegisterSubmodule("dconv2", &dconv2_);
  if (correlational_) {
    cconv_ = std::make_unique<nn::Conv2dLayer>(
        out_channels, out_channels, nn::CorrelationalConvGeometry(num_assets),
        init_rng);
    RegisterSubmodule("cconv", cconv_.get());
  }
}

ag::Var TemporalConvBlock::Forward(const ag::Var& input) const {
  ag::Var h = ag::Relu(
      ag::Dropout(dconv1_.Forward(input), dropout_, training(), dropout_rng_));
  h = ag::Relu(
      ag::Dropout(dconv2_.Forward(h), dropout_, training(), dropout_rng_));
  if (correlational_) {
    h = ag::Relu(
        ag::Dropout(cconv_->Forward(h), dropout_, training(), dropout_rng_));
  }
  return h;
}

// ------------------------------------------------- CorrelationInfoNet ----

CorrelationInfoNet::CorrelationInfoNet(const PolicyConfig& config,
                                       bool correlational, Rng* init_rng,
                                       Rng* dropout_rng, bool collapse_time)
    : num_assets_(config.num_assets),
      window_(config.window),
      channels2_(config.block2_channels),
      block1_(market::kNumPriceFields, config.block1_channels,
              /*dilation=*/1, config.num_assets, correlational,
              config.dropout, init_rng, dropout_rng),
      block2_(config.block1_channels, config.block2_channels,
              /*dilation=*/2, config.num_assets, correlational,
              config.dropout, init_rng, dropout_rng),
      block3_(config.block2_channels, config.block2_channels,
              /*dilation=*/4, config.num_assets, correlational,
              config.dropout, init_rng, dropout_rng) {
  RegisterSubmodule("block1", &block1_);
  RegisterSubmodule("block2", &block2_);
  RegisterSubmodule("block3", &block3_);
  if (collapse_time) {
    conv4_ = std::make_unique<nn::Conv2dLayer>(
        config.block2_channels, config.block2_channels,
        nn::TimeCollapseConvGeometry(config.window), init_rng);
    RegisterSubmodule("conv4", conv4_.get());
  }
}

ag::Var CorrelationInfoNet::RunBlocks(const ag::Var& conv_input) const {
  ag::Var h = block1_.Forward(conv_input);
  h = block2_.Forward(h);
  return block3_.Forward(h);
}

ag::Var CorrelationInfoNet::Forward(const ag::Var& windows) const {
  PPN_CHECK_EQ(windows->value().ndim(), 4);
  const int64_t batch = windows->value().dim(0);
  PPN_CHECK_EQ(windows->value().dim(1), num_assets_);
  PPN_CHECK_EQ(windows->value().dim(2), window_);
  PPN_CHECK(conv4_ != nullptr)
      << "Forward requires collapse_time; use ForwardSequence instead";
  // [B, m, k, 4] -> [B, 4, m, k].
  ag::Var conv_input = ag::Permute4(windows, {0, 3, 1, 2});
  ag::Var h = RunBlocks(conv_input);
  h = ag::Relu(conv4_->Forward(h));  // [B, C2, m, 1].
  // -> [B, m, C2].
  ag::Var per_asset = ag::Permute4(h, {0, 2, 3, 1});
  return ag::Reshape(per_asset, {batch, num_assets_, channels2_});
}

ag::Var CorrelationInfoNet::ForwardSequence(const ag::Var& windows) const {
  PPN_CHECK_EQ(windows->value().ndim(), 4);
  ag::Var conv_input = ag::Permute4(windows, {0, 3, 1, 2});
  ag::Var h = RunBlocks(conv_input);  // [B, C2, m, k].
  return ag::Permute4(h, {0, 2, 3, 1});  // [B, m, k, C2].
}

}  // namespace ppn::core
