#ifndef PPN_PPN_POLICY_INFERENCE_H_
#define PPN_PPN_POLICY_INFERENCE_H_

#include "ppn/policy_module.h"
#include "tensor/tensor.h"

/// \file
/// The shared grad-free inference path of a trained policy. Both consumers
/// of a trained `PolicyModule` — the backtester's `PolicyStrategy` adapter
/// and the serving engine's `serve::PortfolioServer` — route their forward
/// passes through this class, so a decision computed one user at a time is
/// the same code path (and the same bits) as a decision computed for a
/// thousand-user batch.

namespace ppn::core {

/// Batched, tape-free policy evaluation. Construction forces eval mode
/// (dropout off); every `DecideBatch` runs under `ag::InferenceMode`, so
/// the forward records no autograd tape and allocates no gradient buffers
/// regardless of how many users share the batch.
class PolicyInference {
 public:
  /// `policy` must outlive this object. Switches the module to eval mode.
  explicit PolicyInference(PolicyModule* policy);

  const PolicyConfig& config() const;

  /// Re-asserts eval mode (dropout off). Call before an evaluation run if
  /// the module may have been switched back to training in between.
  void EnsureEvalMode() const;

  /// One decision per batch row. `windows` is [B, m, k, 4] (normalized
  /// price windows, see `market::NormalizedWindow`); `prev_actions` is
  /// [B, m] holding each user's previous RISK weights (cash slot omitted,
  /// the PVM convention). Returns [B, m+1] portfolio rows on the simplex
  /// with cash at column 0. Every policy kernel is row-independent with a
  /// fixed accumulation order, so the output rows are bit-identical to B
  /// separate single-row calls.
  Tensor DecideBatch(const Tensor& windows, const Tensor& prev_actions) const;

 private:
  PolicyModule* policy_;
};

}  // namespace ppn::core

#endif  // PPN_PPN_POLICY_INFERENCE_H_
