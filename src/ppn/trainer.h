#ifndef PPN_PPN_TRAINER_H_
#define PPN_PPN_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "market/dataset.h"
#include "nn/optimizer.h"
#include "obs/run_log.h"
#include "ppn/policy_module.h"
#include "ppn/pvm.h"
#include "ppn/reward.h"

/// \file
/// Direct policy gradient training (paper Section 5.1 + Remark 3): the
/// reward of portfolio selection is immediate and differentiable in the
/// actions, so the policy is trained by gradient ascent on the
/// cost-sensitive reward over randomly sampled contiguous batches, with a
/// portfolio vector memory supplying the recursive a_{t-1} inputs.

namespace ppn::core {

/// Trainer hyperparameters (defaults follow the paper where stated).
struct TrainerConfig {
  int64_t batch_size = 32;     ///< T: periods per sampled batch.
  int64_t steps = 800;         ///< Gradient steps.
  float learning_rate = 1e-3f; ///< Adam learning rate (paper: 0.001).
  float weight_decay = 0.0f;   ///< Decoupled L2 decay (AdamW style).
  double grad_clip = 5.0;      ///< Global-norm gradient clip.
  /// Geometric bias toward recent batch starts (0 = uniform sampling;
  /// p > 0 samples start t0 with weight (1-p)^(latest - t0), as in EIIE).
  double geometric_p = 0.0;
  /// Training-time return-perturbation adversary (scenario-engine
  /// stretch): when > 0, every batch entry's RISK relatives are multiplied
  /// by exp(ε·z), z ~ N(0,1) from the trainer's RNG, so the policy
  /// optimizes against perturbed futures instead of the recorded ones
  /// (cash stays exactly 1). 0 (the default) draws nothing — the RNG
  /// stream, and therefore every existing result and checkpoint replay,
  /// is bit-identical to builds that predate the knob.
  double adversarial_epsilon = 0.0;
  RewardConfig reward;
  uint64_t seed = 1;

  /// Checks batch_size/steps > 0, learning_rate > 0, weight_decay ≥ 0,
  /// grad_clip > 0, geometric_p ∈ [0, 1), adversarial_epsilon ∈ [0, 1),
  /// and `reward` (see RewardConfig::Validate). Aborts on violation;
  /// called at trainer construction.
  void Validate() const;
};

/// Trains a policy on a dataset's training range by direct policy gradient.
class PolicyGradientTrainer {
 public:
  /// `policy` must outlive the trainer. Windows and relatives for the whole
  /// training range are precomputed here.
  PolicyGradientTrainer(PolicyModule* policy,
                        const market::MarketDataset& dataset,
                        TrainerConfig config);

  /// Runs one gradient step on a sampled batch; returns the reward value.
  double TrainStep();

  /// Runs steps until `steps_done() == config.steps` (all of them on a
  /// fresh trainer, the remainder after `LoadState`); returns the mean
  /// reward of the last 10% of steps (a convergence indicator).
  double Train();

  /// Gradient steps taken so far (survives checkpoint/restore).
  int64_t steps_done() const { return steps_done_; }

  /// Mean reward over the completed tail-window steps (0 before any).
  double tail_mean() const {
    return tail_count_ > 0 ? tail_sum_ / tail_count_ : 0.0;
  }

  /// Serializes the complete training state — policy parameters, Adam
  /// moments, RNG streams, PVM contents, and step counters — into sections
  /// of `writer`. `dropout_rng` is the externally owned dropout stream
  /// (nullptr when the policy has no dropout); it is captured alongside so
  /// a resumed run draws the identical noise sequence.
  void SaveState(ckpt::CheckpointWriter* writer, const Rng* dropout_rng) const;

  /// Restores state written by `SaveState` into this trainer (which must
  /// have been constructed with the same policy shape, dataset, and
  /// config). Returns false with a contextual `*error` on any mismatch.
  bool LoadState(ckpt::CheckpointReader* reader, Rng* dropout_rng,
                 std::string* error);

  /// Attaches a per-step telemetry sink (nullptr detaches). NOT owned;
  /// must outlive the trainer or be detached first. When attached, every
  /// TrainStep appends one RunLogRecord — reward decomposition, pre-clip
  /// gradient norm, PVM staleness, solver iterations, wall time. Purely
  /// observational: attaching a log never changes training results.
  void AttachRunLog(obs::RunLog* run_log) { run_log_ = run_log; }

  /// Portfolio vector memory (exposed for tests).
  const PortfolioVectorMemory& pvm() const { return pvm_; }

  /// First decision period of the training range (k).
  int64_t first_period() const { return first_period_; }

  /// One past the last training decision period.
  int64_t last_period() const { return last_period_; }

 private:
  /// Builds the [T, m, k, 4] window tensor for decisions t0 .. t0+T-1.
  Tensor BatchWindows(int64_t t0) const;

  PolicyModule* policy_;
  TrainerConfig config_;
  int64_t num_assets_;
  int64_t window_;
  int64_t first_period_;
  int64_t last_period_;
  PortfolioVectorMemory pvm_;
  /// pvm_write_step_[t] is the value of steps_done_ when period t's PVM
  /// row was last rewritten (-1 = still the uniform initialization).
  /// Telemetry only — feeds the run log's pvm_staleness field; not part
  /// of the checkpointed state (staleness restarts after a resume).
  std::vector<int64_t> pvm_write_step_;
  obs::RunLog* run_log_ = nullptr;
  Rng rng_;
  std::unique_ptr<nn::Adam> optimizer_;
  /// Steps taken so far; indexes the obs reward-breakdown trace ring.
  int64_t steps_done_ = 0;
  /// Running sum/count of rewards inside the final-10% tail window; kept as
  /// members (not Train() locals) so the convergence indicator survives a
  /// checkpoint/restore cycle.
  double tail_sum_ = 0.0;
  int64_t tail_count_ = 0;
  /// windows_[t - first_period_] is the normalized window for a decision at
  /// period t (data through t-1).
  std::vector<Tensor> windows_;
  /// relatives_[t] is x_t with cash (defined for t >= 1).
  std::vector<std::vector<double>> relatives_;
};

}  // namespace ppn::core

#endif  // PPN_PPN_TRAINER_H_
