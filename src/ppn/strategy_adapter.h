#ifndef PPN_PPN_STRATEGY_ADAPTER_H_
#define PPN_PPN_STRATEGY_ADAPTER_H_

#include <string>
#include <vector>

#include "backtest/strategy.h"
#include "ppn/policy_inference.h"
#include "ppn/policy_module.h"

/// \file
/// Adapter exposing a trained `PolicyModule` to the backtester: sequential
/// evaluation with the network's own previous action fed back recursively.
/// Decisions go through the shared `PolicyInference` path (grad-free,
/// batch-of-one), the same code the serving engine batches over.

namespace ppn::core {

/// Runs a trained policy as a backtest strategy (dropout disabled).
class PolicyStrategy : public backtest::Strategy {
 public:
  /// `policy` must outlive the strategy; `display_name` is used in tables.
  PolicyStrategy(PolicyModule* policy, std::string display_name);

  std::string name() const override { return display_name_; }
  void Reset(const market::OhlcPanel& panel, int64_t first_period) override;
  std::vector<double> DecideWeights(
      const backtest::MarketView& view,
      const std::vector<double>& prev_hat) override;

 private:
  PolicyInference inference_;
  std::string display_name_;
  std::vector<double> last_action_;
};

}  // namespace ppn::core

#endif  // PPN_PPN_STRATEGY_ADAPTER_H_
