#include "ppn/reward.h"

#include <cmath>

#include "common/check.h"

namespace ppn::core {

void RewardConfig::Validate() const {
  PPN_CHECK_GE(lambda, 0.0);
  PPN_CHECK_GE(gamma, 0.0);
  PPN_CHECK(cost_rate >= 0.0 && cost_rate < 1.0)
      << "cost_rate out of [0, 1): " << cost_rate;
}

ag::Var CostSensitiveReward(const ag::Var& actions, const RewardInputs& inputs,
                            const RewardConfig& config,
                            RewardBreakdown* breakdown,
                            std::vector<double>* omegas) {
  PPN_CHECK_EQ(actions->value().ndim(), 2);
  const int64_t periods = actions->value().dim(0);
  const int64_t width = actions->value().dim(1);
  PPN_CHECK(SameShape(actions->value(), inputs.relatives));
  PPN_CHECK(SameShape(actions->value(), inputs.prev_hat));
  PPN_CHECK_GT(periods, 1) << "variance needs at least two periods";

  // Solve the self-consistent ω_t per period from the action VALUES.
  const backtest::CostModel costs =
      backtest::CostModel::Uniform(config.cost_rate);
  Tensor omega_rows({periods, width});  // ω̄_t broadcast across columns.
  std::vector<double> action_row(width);
  std::vector<double> prev_row(width);
  int64_t solver_iterations = 0;
  for (int64_t t = 0; t < periods; ++t) {
    for (int64_t i = 0; i < width; ++i) {
      action_row[i] = actions->value()[t * width + i];
      prev_row[i] = inputs.prev_hat[t * width + i];
    }
    const backtest::NetWealthSolve solve =
        backtest::SolveNetWealthFactorDetailed(prev_row, action_row, costs);
    PPN_CHECK(solve.converged)
        << "net-wealth fixed point did not converge after " << solve.iterations
        << " iterations";
    solver_iterations += solve.iterations;
    if (omegas != nullptr) omegas->push_back(solve.omega);
    for (int64_t i = 0; i < width; ++i) {
      omega_rows.MutableData()[t * width + i] = static_cast<float>(solve.omega);
    }
  }

  // r_t = a_tᵀ x_t, per row: elementwise product then row sums via matmul
  // with a ones column.
  ag::Var relatives = ag::Constant(inputs.relatives);
  ag::Var weighted = ag::Mul(actions, relatives);
  ag::Var ones_column = ag::Constant(Tensor::Full({width, 1}, 1.0f));
  ag::Var gross = ag::Reshape(ag::MatMul(weighted, ones_column), {periods});
  // Differentiable cost: c_t(a) = ψ Σ_{risk i} |a_{t,i} ω̄_t - â_{t-1,i}|
  // with ω̄_t held at the solved fixed point (at that point c_t(a) equals
  // 1 - ω_t exactly, and the gradient carries the ψ-scaled trading
  // pressure into the policy — unlike a pure stop-gradient factor).
  ag::Var prev_hat = ag::Constant(inputs.prev_hat);
  ag::Var omega_const = ag::Constant(omega_rows);
  ag::Var scaled_move =
      ag::Abs(ag::Sub(ag::Mul(actions, omega_const), prev_hat));
  Tensor risk_mask_data({width, 1});  // Zero for the cash column.
  for (int64_t i = 1; i < width; ++i) risk_mask_data.MutableData()[i] = 1.0f;
  ag::Var cost = ag::MulScalar(
      ag::Reshape(ag::MatMul(scaled_move, ag::Constant(risk_mask_data)),
                  {periods}),
      static_cast<float>(config.cost_rate));
  // r̂ᶜ_t = log r_t + log(1 - c_t). With differentiable_cost disabled the
  // cost factor is detached (EIIE-style plain rebalanced log-return).
  ag::Var cost_term = config.differentiable_cost ? cost : ag::Detach(cost);
  ag::Var log_net = ag::Add(
      ag::Log(gross),
      ag::Log(ag::AddScalar(ag::Neg(cost_term), 1.0f)));

  ag::Var mean_term = ag::MeanAll(log_net);
  ag::Var variance_term = ag::VarianceAll(log_net);

  // Turnover constraint: mean over periods of ‖a_t - â_{t-1}‖₁.
  ag::Var l1 = ag::SumAll(ag::Abs(ag::Sub(actions, prev_hat)));
  ag::Var turnover_term =
      ag::MulScalar(l1, 1.0f / static_cast<float>(periods));

  ag::Var reward = ag::Sub(
      ag::Sub(mean_term,
              ag::MulScalar(variance_term, static_cast<float>(config.lambda))),
      ag::MulScalar(turnover_term, static_cast<float>(config.gamma)));

  if (breakdown != nullptr) {
    breakdown->mean_log_return = ag::ScalarValue(mean_term);
    breakdown->variance = ag::ScalarValue(variance_term);
    breakdown->mean_turnover = ag::ScalarValue(turnover_term);
    breakdown->total = ag::ScalarValue(reward);
    breakdown->solver_iterations = solver_iterations;
  }
  return reward;
}

}  // namespace ppn::core
