#include "ppn/config.h"

namespace ppn::core {

std::vector<PolicyVariant> Table4Variants() {
  return {PolicyVariant::kPpnLstm,     PolicyVariant::kPpnTcb,
          PolicyVariant::kPpnTccb,     PolicyVariant::kPpnTcbLstm,
          PolicyVariant::kPpnTccbLstm, PolicyVariant::kPpnI,
          PolicyVariant::kPpn};
}

std::string VariantName(PolicyVariant variant) {
  switch (variant) {
    case PolicyVariant::kPpn:
      return "PPN";
    case PolicyVariant::kPpnI:
      return "PPN-I";
    case PolicyVariant::kPpnLstm:
      return "PPN-LSTM";
    case PolicyVariant::kPpnTcb:
      return "PPN-TCB";
    case PolicyVariant::kPpnTccb:
      return "PPN-TCCB";
    case PolicyVariant::kPpnTcbLstm:
      return "PPN-TCB-LSTM";
    case PolicyVariant::kPpnTccbLstm:
      return "PPN-TCCB-LSTM";
    case PolicyVariant::kEiie:
      return "EIIE";
  }
  return "Unknown";
}

bool VariantFromName(const std::string& name, PolicyVariant* variant) {
  static const PolicyVariant kAll[] = {
      PolicyVariant::kPpn,         PolicyVariant::kPpnI,
      PolicyVariant::kPpnLstm,     PolicyVariant::kPpnTcb,
      PolicyVariant::kPpnTccb,     PolicyVariant::kPpnTcbLstm,
      PolicyVariant::kPpnTccbLstm, PolicyVariant::kEiie};
  for (const PolicyVariant candidate : kAll) {
    if (VariantName(candidate) == name) {
      *variant = candidate;
      return true;
    }
  }
  return false;
}

bool UsesAssetCorrelation(PolicyVariant variant) {
  switch (variant) {
    case PolicyVariant::kPpn:
    case PolicyVariant::kPpnTccb:
    case PolicyVariant::kPpnTccbLstm:
      return true;
    default:
      return false;
  }
}

}  // namespace ppn::core
