#ifndef PPN_PPN_FEATURE_NETS_H_
#define PPN_PPN_FEATURE_NETS_H_

#include <memory>
#include <vector>

#include "market/dataset.h"
#include "nn/conv.h"
#include "nn/lstm.h"
#include "ppn/config.h"

/// \file
/// The two feature-extraction streams of the portfolio policy network
/// (paper Sections 4.2–4.3 and Table 2):
///
///  * `SequentialInfoNet` — one shared-weight LSTM over each asset's
///    normalized price window, keeping the final hidden state;
///  * `CorrelationInfoNet` — a stack of temporal (correlational)
///    convolution blocks: dilated causal convolutions along time plus,
///    in TCCB mode, an m×1 correlational convolution across assets.
///
/// Throughout, policy inputs are laid out [batch, assets(m), time(k), 4]
/// and conv feature maps [batch, channels, assets, time].

namespace ppn::core {

/// Sequential information net: per-asset LSTM, shared weights.
class SequentialInfoNet : public nn::Module {
 public:
  SequentialInfoNet(const PolicyConfig& config, Rng* rng);

  /// [B, m, k, 4] -> [B, m, hidden] (final hidden state per asset).
  ag::Var Forward(const ag::Var& windows) const;

  int64_t feature_size() const { return hidden_; }

 private:
  int64_t num_assets_;
  int64_t window_;
  int64_t hidden_;
  nn::Lstm lstm_;
};

/// One temporal (correlational) convolution block: two dilated causal
/// convolutions along time, then (TCCB only) one m×1 correlational
/// convolution across assets. Each conv is followed by dropout + ReLU.
class TemporalConvBlock : public nn::Module {
 public:
  TemporalConvBlock(int64_t in_channels, int64_t out_channels,
                    int64_t dilation, int64_t num_assets, bool correlational,
                    float dropout, Rng* init_rng, Rng* dropout_rng);

  /// [B, C_in, m, k] -> [B, C_out, m, k] (shape-preserving).
  ag::Var Forward(const ag::Var& input) const;

  bool correlational() const { return correlational_; }

 private:
  bool correlational_;
  float dropout_;
  Rng* dropout_rng_;  // Not owned.
  nn::Conv2dLayer dconv1_;
  nn::Conv2dLayer dconv2_;
  std::unique_ptr<nn::Conv2dLayer> cconv_;
};

/// Correlation information net: three blocks with dilations 1, 2, 4 and a
/// final [1×k] VALID convolution collapsing the time axis (Conv4). With
/// `correlational == false` the blocks degenerate to TCB (no cross-asset
/// mixing) — the PPN-I / PPN-TCB variants.
class CorrelationInfoNet : public nn::Module {
 public:
  /// `collapse_time == false` omits the Conv4 layer entirely — used by the
  /// cascaded variants, which consume `ForwardSequence` and would otherwise
  /// carry dead parameters.
  CorrelationInfoNet(const PolicyConfig& config, bool correlational,
                     Rng* init_rng, Rng* dropout_rng,
                     bool collapse_time = true);

  /// [B, m, k, 4] -> [B, m, feature_size()] (time collapsed by Conv4).
  /// Requires `collapse_time == true`.
  ag::Var Forward(const ag::Var& windows) const;

  /// [B, m, k, 4] -> [B, m, k, C] — block features with the time axis kept
  /// (used by the cascaded TCB-LSTM / TCCB-LSTM variants).
  ag::Var ForwardSequence(const ag::Var& windows) const;

  int64_t feature_size() const { return channels2_; }
  int64_t sequence_channels() const { return channels2_; }

 private:
  /// Shared block stack: [B, 4, m, k] -> [B, C2, m, k].
  ag::Var RunBlocks(const ag::Var& conv_input) const;

  int64_t num_assets_;
  int64_t window_;
  int64_t channels2_;
  TemporalConvBlock block1_;
  TemporalConvBlock block2_;
  TemporalConvBlock block3_;
  std::unique_ptr<nn::Conv2dLayer> conv4_;  // Null if !collapse_time.
};

}  // namespace ppn::core

#endif  // PPN_PPN_FEATURE_NETS_H_
