#ifndef PPN_NN_LINEAR_H_
#define PPN_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

/// \file
/// Fully connected layer.

namespace ppn::nn {

/// y = x W + b for x of shape [batch, in_features].
class Linear : public Module {
 public:
  /// Creates a layer with Xavier-uniform weights and zero bias. Pass
  /// `use_bias = false` for layers whose bias would be a structural no-op
  /// (e.g. a shared scalar bias ahead of a softmax).
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  /// Applies the layer to a [batch, in_features] input.
  ag::Var Forward(const ag::Var& input) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  /// Weight parameter [in_features, out_features].
  const ag::Var& weight() const { return weight_; }
  /// Bias parameter [out_features]; null when constructed bias-free.
  const ag::Var& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Var weight_;
  ag::Var bias_;  // Null if use_bias was false.
};

}  // namespace ppn::nn

#endif  // PPN_NN_LINEAR_H_
