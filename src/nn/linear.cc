#include "nn/linear.h"

#include "common/check.h"
#include "nn/init.h"
#include "obs/stats.h"

namespace ppn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  PPN_CHECK_GT(in_features, 0);
  PPN_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight", XavierUniform({in_features, out_features}, in_features,
                              out_features, rng));
  if (use_bias) {
    bias_ = RegisterParameter("bias", ZeroInit({out_features}));
  }
}

ag::Var Linear::Forward(const ag::Var& input) const {
  PPN_CHECK_EQ(input->value().ndim(), 2);
  PPN_CHECK_EQ(input->value().dim(1), in_features_);
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("nn.linear.calls");
    calls.Add(1.0);
  }
  ag::Var product = ag::MatMul(input, weight_);
  if (bias_ == nullptr) return product;
  return ag::AddRowVector(product, bias_);
}

}  // namespace ppn::nn
