#ifndef PPN_NN_OPTIMIZER_H_
#define PPN_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "ckpt/binio.h"

/// \file
/// First-order optimizers. An optimizer holds handles to the parameters it
/// updates; `Step()` applies one update from the gradients currently
/// accumulated in those parameters and does NOT clear them (call
/// `Module::ZeroGrad` before each backward pass).

namespace ppn::nn {

/// Interface shared by all optimizers.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> parameters);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update step from the accumulated gradients.
  virtual void Step() = 0;

  /// Parameters managed by this optimizer.
  const std::vector<ag::Var>& parameters() const { return parameters_; }

  /// Rescales gradients so the global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

 protected:
  std::vector<ag::Var> parameters_;
};

/// Vanilla stochastic gradient descent (optionally with momentum).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> parameters, float learning_rate,
      float momentum = 0.0f);

  void Step() override;

 private:
  float learning_rate_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction — the optimizer the paper
/// uses (learning rate 0.001). `weight_decay` applies decoupled L2 decay
/// (AdamW; 0 disables it).
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;

  /// Steps taken so far.
  int64_t step_count() const { return step_count_; }

  /// Serializes the optimizer state (step count + both moment vectors)
  /// exactly; together with `Module::SaveState` this makes a resumed run
  /// bit-identical to an uninterrupted one.
  void SaveState(ckpt::BinWriter* writer) const;

  /// Restores state written by `SaveState`. The optimizer must manage an
  /// identically shaped parameter list; false with *error otherwise.
  bool LoadState(ckpt::BinReader* reader, std::string* error);

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

}  // namespace ppn::nn

#endif  // PPN_NN_OPTIMIZER_H_
