#include "nn/lstm.h"

#include "common/check.h"
#include "nn/init.h"
#include "obs/stats.h"

namespace ppn::nn {

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  PPN_CHECK_GT(input_size, 0);
  PPN_CHECK_GT(hidden_size, 0);
  w_ih_ = RegisterParameter(
      "w_ih", XavierUniform({input_size, 4 * hidden_size}, input_size,
                            hidden_size, rng));
  w_hh_ = RegisterParameter(
      "w_hh", XavierUniform({hidden_size, 4 * hidden_size}, hidden_size,
                            hidden_size, rng));
  Tensor bias = ZeroInit({4 * hidden_size});
  // Forget-gate bias (second slice) starts at 1.
  for (int64_t j = hidden_size; j < 2 * hidden_size; ++j) {
    bias.MutableData()[j] = 1.0f;
  }
  bias_ = RegisterParameter("bias", std::move(bias));
}

void Lstm::Step(const ag::Var& x_t, ag::Var* h, ag::Var* c) const {
  using namespace ag;  // NOLINT: local op vocabulary.
  if (obs::Enabled()) {
    static thread_local obs::Counter& steps =
        obs::GetCounter("nn.lstm.cell_steps");
    steps.Add(1.0);
  }
  Var z = AddRowVector(Add(MatMul(x_t, w_ih_), MatMul(*h, w_hh_)), bias_);
  const int64_t hs = hidden_size_;
  Var i_gate = Sigmoid(NarrowVar(z, 1, 0, hs));
  Var f_gate = Sigmoid(NarrowVar(z, 1, hs, hs));
  Var g_gate = Tanh(NarrowVar(z, 1, 2 * hs, hs));
  Var o_gate = Sigmoid(NarrowVar(z, 1, 3 * hs, hs));
  *c = Add(Mul(f_gate, *c), Mul(i_gate, g_gate));
  *h = Mul(o_gate, Tanh(*c));
}

ag::Var Lstm::ForwardLastHidden(const ag::Var& sequence) const {
  PPN_CHECK_EQ(sequence->value().ndim(), 3);
  const int64_t batch = sequence->value().dim(0);
  const int64_t time = sequence->value().dim(1);
  PPN_CHECK_EQ(sequence->value().dim(2), input_size_);
  PPN_CHECK_GT(time, 0);
  ag::Var h = ag::Constant(Tensor({batch, hidden_size_}));
  ag::Var c = ag::Constant(Tensor({batch, hidden_size_}));
  for (int64_t t = 0; t < time; ++t) {
    ag::Var x_t = ag::Reshape(ag::NarrowVar(sequence, 1, t, 1),
                              {batch, input_size_});
    Step(x_t, &h, &c);
  }
  return h;
}

ag::Var Lstm::ForwardAllHidden(const ag::Var& sequence) const {
  PPN_CHECK_EQ(sequence->value().ndim(), 3);
  const int64_t batch = sequence->value().dim(0);
  const int64_t time = sequence->value().dim(1);
  PPN_CHECK_EQ(sequence->value().dim(2), input_size_);
  PPN_CHECK_GT(time, 0);
  ag::Var h = ag::Constant(Tensor({batch, hidden_size_}));
  ag::Var c = ag::Constant(Tensor({batch, hidden_size_}));
  std::vector<ag::Var> hidden_steps;
  hidden_steps.reserve(time);
  for (int64_t t = 0; t < time; ++t) {
    ag::Var x_t = ag::Reshape(ag::NarrowVar(sequence, 1, t, 1),
                              {batch, input_size_});
    Step(x_t, &h, &c);
    hidden_steps.push_back(ag::Reshape(h, {batch, 1, hidden_size_}));
  }
  return ag::ConcatVars(hidden_steps, 1);
}

}  // namespace ppn::nn
