#ifndef PPN_NN_MODULE_H_
#define PPN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

/// \file
/// Base class for neural-network layers: a tree of modules with a recursive
/// parameter registry, a shared training/eval flag, and text serialization
/// of all parameters.

namespace ppn::nn {

/// Base class for layers and networks. Subclasses register their trainable
/// tensors with `RegisterParameter` and their child layers with
/// `RegisterSubmodule`; `Parameters()` then walks the whole tree.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its descendants, in
  /// registration order.
  std::vector<ag::Var> Parameters() const;

  /// Named parameters with slash-separated paths ("lstm/w_ih", ...).
  std::vector<std::pair<std::string, ag::Var>> NamedParameters() const;

  /// Zeroes the gradient accumulator of every parameter.
  void ZeroGrad();

  /// Sets training mode (affects dropout) for the whole subtree.
  void SetTraining(bool training);

  /// Whether this module is in training mode.
  bool training() const { return training_; }

  /// Total number of scalar parameters in the subtree.
  int64_t ParameterCount() const;

  /// Writes all parameters to a text file. Returns false on IO failure.
  bool SaveParameters(const std::string& path) const;

  /// Loads parameters written by `SaveParameters`. The module tree must
  /// have the same named shapes. Returns false on IO/shape mismatch.
  bool LoadParameters(const std::string& path);

  /// Copies parameter values elementwise from `source`, which must have an
  /// identically shaped parameter list (used for target networks in DDPG).
  void CopyParametersFrom(const Module& source);

  /// Soft update: p := (1 - tau) * p + tau * p_source (Polyak averaging).
  void PolyakUpdateFrom(const Module& source, float tau);

 protected:
  /// Registers and returns a trainable parameter initialized to `init`.
  ag::Var RegisterParameter(const std::string& name, Tensor init);

  /// Registers a child layer (non-owning; the child must outlive `this`,
  /// which holds it as a data member).
  void RegisterSubmodule(const std::string& name, Module* submodule);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, ag::Var>>* out) const;

  std::vector<std::pair<std::string, ag::Var>> parameters_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
};

}  // namespace ppn::nn

#endif  // PPN_NN_MODULE_H_
