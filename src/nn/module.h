#ifndef PPN_NN_MODULE_H_
#define PPN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "ckpt/binio.h"

/// \file
/// Base class for neural-network layers: a tree of modules with a recursive
/// parameter registry, a shared training/eval flag, and parameter
/// serialization — binary (exact bits, used by checkpoints) and a legacy
/// text format.

namespace ppn::nn {

/// Base class for layers and networks. Subclasses register their trainable
/// tensors with `RegisterParameter` and their child layers with
/// `RegisterSubmodule`; `Parameters()` then walks the whole tree.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its descendants, in
  /// registration order.
  std::vector<ag::Var> Parameters() const;

  /// Named parameters with slash-separated paths ("lstm/w_ih", ...).
  std::vector<std::pair<std::string, ag::Var>> NamedParameters() const;

  /// Zeroes the gradient accumulator of every parameter.
  void ZeroGrad();

  /// Sets training mode (affects dropout) for the whole subtree.
  void SetTraining(bool training);

  /// Whether this module is in training mode.
  bool training() const { return training_; }

  /// Total number of scalar parameters in the subtree.
  int64_t ParameterCount() const;

  /// Serializes every named parameter (name, size, raw float32 payload)
  /// into `writer`. Exact: NaN/±Inf and all finite values round-trip
  /// bit-for-bit, unlike the text format.
  void SaveState(ckpt::BinWriter* writer) const;

  /// Restores parameters written by `SaveState`. The module tree must
  /// match (same names and sizes in order); returns false with a
  /// contextual message in *error on any mismatch or short read. The
  /// module is only partially updated on failure — callers treat a failed
  /// load as fatal for the target module.
  bool LoadState(ckpt::BinReader* reader, std::string* error);

  /// Writes all parameters to a text file (atomically: temp + rename).
  /// Returns false on IO failure. Prefer the binary `SaveState` path for
  /// checkpoints; this human-readable dump loses no values (non-finite
  /// tokens included) but rounds to 9 significant digits.
  bool SaveParameters(const std::string& path) const;

  /// Loads parameters written by `SaveParameters`. The module tree must
  /// have the same named shapes. Returns false on IO/shape mismatch.
  /// Accepts the non-finite tokens (`nan`, `inf`, `-inf`) the writer
  /// emits.
  bool LoadParameters(const std::string& path);

  /// Copies parameter values elementwise from `source`, which must have an
  /// identically shaped parameter list (used for target networks in DDPG).
  void CopyParametersFrom(const Module& source);

  /// Soft update: p := (1 - tau) * p + tau * p_source (Polyak averaging).
  void PolyakUpdateFrom(const Module& source, float tau);

 protected:
  /// Registers and returns a trainable parameter initialized to `init`.
  ag::Var RegisterParameter(const std::string& name, Tensor init);

  /// Registers a child layer (non-owning; the child must outlive `this`,
  /// which holds it as a data member).
  void RegisterSubmodule(const std::string& name, Module* submodule);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, ag::Var>>* out) const;

  std::vector<std::pair<std::string, ag::Var>> parameters_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
};

}  // namespace ppn::nn

#endif  // PPN_NN_MODULE_H_
