#include "nn/init.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace ppn::nn {

Tensor XavierUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng* rng) {
  PPN_CHECK_GT(fan_in + fan_out, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform(std::move(shape), -bound, bound, rng);
}

Tensor KaimingUniform(std::vector<int64_t> shape, int64_t fan_in, Rng* rng) {
  PPN_CHECK_GT(fan_in, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  return RandomUniform(std::move(shape), -bound, bound, rng);
}

Tensor ZeroInit(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

}  // namespace ppn::nn
