#ifndef PPN_NN_LSTM_H_
#define PPN_NN_LSTM_H_

#include "autograd/ops.h"
#include "nn/module.h"

/// \file
/// Long short-term memory layer (Hochreiter & Schmidhuber 1997). The
/// sequential information net runs one shared-weight LSTM over each asset's
/// price window and keeps the final hidden state, so the layer exposes a
/// batched "sequence in, last hidden out" interface.

namespace ppn::nn {

/// Single-layer LSTM with fused gate weights.
///
/// Parameters: `w_ih` [input_size, 4*hidden], `w_hh` [hidden, 4*hidden],
/// `bias` [4*hidden], gate order (i, f, g, o). The forget-gate bias slice is
/// initialized to 1 (standard trick for gradient flow on long windows).
class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng* rng);

  /// Runs the recurrence over a [batch, time, input_size] sequence and
  /// returns the final hidden state [batch, hidden_size].
  ag::Var ForwardLastHidden(const ag::Var& sequence) const;

  /// Runs the recurrence and returns all hidden states concatenated as
  /// [batch, time, hidden_size].
  ag::Var ForwardAllHidden(const ag::Var& sequence) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  /// One step: returns new (h, c) given x_t [batch, input].
  void Step(const ag::Var& x_t, ag::Var* h, ag::Var* c) const;

  int64_t input_size_;
  int64_t hidden_size_;
  ag::Var w_ih_;
  ag::Var w_hh_;
  ag::Var bias_;
};

}  // namespace ppn::nn

#endif  // PPN_NN_LSTM_H_
