#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace ppn::nn {

Optimizer::Optimizer(std::vector<ag::Var> parameters)
    : parameters_(std::move(parameters)) {
  for (const ag::Var& p : parameters_) {
    PPN_CHECK(p != nullptr);
    PPN_CHECK(p->requires_grad()) << "optimizer given a non-trainable leaf";
  }
}

double Optimizer::ClipGradNorm(double max_norm) {
  PPN_CHECK_GT(max_norm, 0.0);
  double total_sq = 0.0;
  for (const ag::Var& p : parameters_) {
    if (!p->has_grad()) continue;
    const float* g = p->grad().Data();
    for (int64_t i = 0; i < p->numel(); ++i) {
      total_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const ag::Var& p : parameters_) {
      if (!p->has_grad()) continue;
      // Scaling through AccumulateGrad would add; mutate in place instead.
      float* g = const_cast<float*>(p->grad().Data());
      for (int64_t i = 0; i < p->numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<ag::Var> parameters, float learning_rate, float momentum)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  PPN_CHECK_GT(learning_rate, 0.0f);
  PPN_CHECK_GE(momentum, 0.0f);
  velocity_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    velocity_[i].assign(parameters_[i]->numel(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    ag::Var& p = parameters_[i];
    if (!p->has_grad()) continue;
    const float* g = p->grad().Data();
    float* value = p->mutable_value()->MutableData();
    float* v = velocity_[i].data();
    for (int64_t j = 0; j < p->numel(); ++j) {
      v[j] = momentum_ * v[j] + g[j];
      value[j] -= learning_rate_ * v[j];
    }
  }
}

Adam::Adam(std::vector<ag::Var> parameters, float learning_rate, float beta1,
           float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  PPN_CHECK_GE(weight_decay, 0.0f);
  PPN_CHECK_GT(learning_rate, 0.0f);
  PPN_CHECK(beta1 >= 0.0f && beta1 < 1.0f);
  PPN_CHECK(beta2 >= 0.0f && beta2 < 1.0f);
  first_moment_.resize(parameters_.size());
  second_moment_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    first_moment_[i].assign(parameters_[i]->numel(), 0.0f);
    second_moment_[i].assign(parameters_[i]->numel(), 0.0f);
  }
}

void Adam::SaveState(ckpt::BinWriter* writer) const {
  PPN_CHECK(writer != nullptr);
  writer->WriteI64(step_count_);
  writer->WriteU64(first_moment_.size());
  for (size_t i = 0; i < first_moment_.size(); ++i) {
    writer->WriteI64(static_cast<int64_t>(first_moment_[i].size()));
    writer->WriteF32Array(first_moment_[i].data(), first_moment_[i].size());
    writer->WriteF32Array(second_moment_[i].data(), second_moment_[i].size());
  }
}

bool Adam::LoadState(ckpt::BinReader* reader, std::string* error) {
  PPN_CHECK(reader != nullptr);
  PPN_CHECK(error != nullptr);
  int64_t step_count = 0;
  uint64_t slots = 0;
  if (!reader->ReadI64(&step_count) || !reader->ReadU64(&slots)) {
    *error = "adam state: short read on header";
    return false;
  }
  if (step_count < 0 || slots != first_moment_.size()) {
    *error = "adam state: stored " + std::to_string(slots) +
             " parameter slots, optimizer has " +
             std::to_string(first_moment_.size());
    return false;
  }
  for (size_t i = 0; i < first_moment_.size(); ++i) {
    int64_t numel = 0;
    if (!reader->ReadI64(&numel) ||
        numel != static_cast<int64_t>(first_moment_[i].size())) {
      *error = "adam state: moment size mismatch at slot " +
               std::to_string(i);
      return false;
    }
    if (!reader->ReadF32Array(first_moment_[i].data(), numel) ||
        !reader->ReadF32Array(second_moment_[i].data(), numel)) {
      *error = "adam state: short read in moments at slot " +
               std::to_string(i);
      return false;
    }
  }
  step_count_ = step_count;
  return true;
}

void Adam::Step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float corrected_lr =
      learning_rate_ * static_cast<float>(std::sqrt(bias2) / bias1);
  for (size_t i = 0; i < parameters_.size(); ++i) {
    ag::Var& p = parameters_[i];
    if (!p->has_grad()) continue;
    const float* g = p->grad().Data();
    float* value = p->mutable_value()->MutableData();
    float* m = first_moment_[i].data();
    float* v = second_moment_[i].data();
    const int64_t numel = p->numel();
    // Elementwise with disjoint writes: bit-identical at any thread count.
#ifdef _OPENMP
#pragma omp parallel for if (InnerParallelEnabled() && numel > 65536) \
    schedule(static)
#endif
    for (int64_t j = 0; j < numel; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      value[j] -= corrected_lr * m[j] / (std::sqrt(v[j]) + epsilon_) +
                  learning_rate_ * weight_decay_ * value[j];
    }
  }
}

}  // namespace ppn::nn
