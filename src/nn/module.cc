#include "nn/module.h"

#include <cstdlib>
#include <fstream>

#include "common/atomic_file.h"
#include "common/check.h"

namespace ppn::nn {

std::vector<ag::Var> Module::Parameters() const {
  std::vector<ag::Var> params;
  for (const auto& [name, var] : NamedParameters()) params.push_back(var);
  return params;
}

std::vector<std::pair<std::string, ag::Var>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, ag::Var>> named;
  CollectNamed("", &named);
  return named;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Var>>* out) const {
  for (const auto& [name, var] : parameters_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, submodule] : submodules_) {
    submodule->CollectNamed(prefix + name + "/", out);
  }
}

void Module::ZeroGrad() {
  for (const ag::Var& p : Parameters()) p->ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, submodule] : submodules_) {
    submodule->SetTraining(training);
  }
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const ag::Var& p : Parameters()) count += p->numel();
  return count;
}

void Module::SaveState(ckpt::BinWriter* writer) const {
  PPN_CHECK(writer != nullptr);
  const auto named = NamedParameters();
  writer->WriteU64(named.size());
  for (const auto& [name, var] : named) {
    writer->WriteString(name);
    writer->WriteI64(var->numel());
    writer->WriteF32Array(var->value().Data(), var->numel());
  }
}

bool Module::LoadState(ckpt::BinReader* reader, std::string* error) {
  PPN_CHECK(reader != nullptr);
  PPN_CHECK(error != nullptr);
  const auto named = NamedParameters();
  uint64_t count = 0;
  if (!reader->ReadU64(&count)) {
    *error = "module state: short read on parameter count";
    return false;
  }
  if (count != named.size()) {
    *error = "module state: expected " + std::to_string(named.size()) +
             " parameters, found " + std::to_string(count);
    return false;
  }
  for (const auto& [name, var] : named) {
    std::string stored_name;
    int64_t numel = 0;
    if (!reader->ReadString(&stored_name) || !reader->ReadI64(&numel)) {
      *error = "module state: short read at parameter '" + name + "'";
      return false;
    }
    if (stored_name != name) {
      *error = "module state: expected parameter '" + name + "', found '" +
               stored_name + "'";
      return false;
    }
    if (numel != var->numel()) {
      *error = "module state: parameter '" + name + "' has " +
               std::to_string(numel) + " values, module expects " +
               std::to_string(var->numel());
      return false;
    }
    if (!reader->ReadF32Array(var->mutable_value()->MutableData(), numel)) {
      *error = "module state: short read in payload of '" + name + "'";
      return false;
    }
  }
  return true;
}

namespace {

/// Strict float token parse that, unlike `operator>>`, accepts the
/// non-finite tokens (`nan`, `inf`, `-inf`) `operator<<` emits — the old
/// extraction-based loader failed part-way through any file holding a
/// non-finite weight that saved "successfully".
bool ParseFloatToken(const std::string& token, float* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtof(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

}  // namespace

bool Module::SaveParameters(const std::string& path) const {
  AtomicFileWriter file(path);
  std::ofstream& out = file.stream();
  if (!out) return false;
  out.precision(9);
  for (const auto& [name, var] : NamedParameters()) {
    out << name << " " << var->numel() << "\n";
    const float* data = var->value().Data();
    for (int64_t i = 0; i < var->numel(); ++i) {
      if (i > 0) out << " ";
      out << data[i];
    }
    out << "\n";
  }
  return file.Commit();
}

bool Module::LoadParameters(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  for (const auto& [name, var] : NamedParameters()) {
    std::string file_name;
    int64_t numel = 0;
    if (!(in >> file_name >> numel)) return false;
    if (file_name != name || numel != var->numel()) return false;
    float* data = var->mutable_value()->MutableData();
    std::string token;
    for (int64_t i = 0; i < numel; ++i) {
      if (!(in >> token) || !ParseFloatToken(token, &data[i])) return false;
    }
  }
  return true;
}

void Module::CopyParametersFrom(const Module& source) {
  const auto mine = Parameters();
  const auto theirs = source.Parameters();
  PPN_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    PPN_CHECK_EQ(mine[i]->numel(), theirs[i]->numel());
    float* dst = mine[i]->mutable_value()->MutableData();
    const float* src = theirs[i]->value().Data();
    for (int64_t j = 0; j < mine[i]->numel(); ++j) dst[j] = src[j];
  }
}

void Module::PolyakUpdateFrom(const Module& source, float tau) {
  const auto mine = Parameters();
  const auto theirs = source.Parameters();
  PPN_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    PPN_CHECK_EQ(mine[i]->numel(), theirs[i]->numel());
    float* dst = mine[i]->mutable_value()->MutableData();
    const float* src = theirs[i]->value().Data();
    for (int64_t j = 0; j < mine[i]->numel(); ++j) {
      dst[j] = (1.0f - tau) * dst[j] + tau * src[j];
    }
  }
}

ag::Var Module::RegisterParameter(const std::string& name, Tensor init) {
  ag::Var param = ag::Parameter(std::move(init));
  parameters_.emplace_back(name, param);
  return param;
}

void Module::RegisterSubmodule(const std::string& name, Module* submodule) {
  PPN_CHECK(submodule != nullptr);
  submodules_.emplace_back(name, submodule);
}

}  // namespace ppn::nn
