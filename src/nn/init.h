#ifndef PPN_NN_INIT_H_
#define PPN_NN_INIT_H_

#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"

/// \file
/// Weight initializers.

namespace ppn::nn {

/// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng* rng);

/// Kaiming/He uniform for ReLU layers: U(-b, b), b = sqrt(6 / fan_in).
Tensor KaimingUniform(std::vector<int64_t> shape, int64_t fan_in, Rng* rng);

/// Zero tensor (biases).
Tensor ZeroInit(std::vector<int64_t> shape);

}  // namespace ppn::nn

#endif  // PPN_NN_INIT_H_
