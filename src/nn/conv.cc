#include "nn/conv.h"

#include "common/check.h"
#include "nn/init.h"

namespace ppn::nn {

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         const Conv2dGeometry& geometry, Rng* rng)
    : geometry_(geometry) {
  PPN_CHECK_GT(in_channels, 0);
  PPN_CHECK_GT(out_channels, 0);
  const int64_t fan_in = in_channels * geometry.kernel_h * geometry.kernel_w;
  weight_ = RegisterParameter(
      "weight", KaimingUniform(
                    {out_channels, in_channels, geometry.kernel_h,
                     geometry.kernel_w},
                    fan_in, rng));
  bias_ = RegisterParameter("bias", ZeroInit({out_channels}));
}

ag::Var Conv2dLayer::Forward(const ag::Var& input) const {
  return ag::Conv2d(input, weight_, bias_, geometry_);
}

Conv2dGeometry CausalTimeConvGeometry(int64_t kernel_w, int64_t dilation) {
  PPN_CHECK_GT(kernel_w, 0);
  PPN_CHECK_GT(dilation, 0);
  Conv2dGeometry g;
  g.kernel_h = 1;
  g.kernel_w = kernel_w;
  g.dilation_w = dilation;
  g.pad_left = dilation * (kernel_w - 1);
  g.pad_right = 0;  // Causality: no future taps.
  return g;
}

Conv2dGeometry CorrelationalConvGeometry(int64_t kernel_h) {
  PPN_CHECK_GT(kernel_h, 0);
  Conv2dGeometry g;
  g.kernel_h = kernel_h;
  g.kernel_w = 1;
  g.pad_top = (kernel_h - 1) / 2;
  g.pad_bottom = (kernel_h - 1) - g.pad_top;
  return g;
}

Conv2dGeometry TimeCollapseConvGeometry(int64_t time_length) {
  PPN_CHECK_GT(time_length, 0);
  Conv2dGeometry g;
  g.kernel_h = 1;
  g.kernel_w = time_length;
  return g;
}

Conv2dGeometry PointwiseConvGeometry() { return Conv2dGeometry{}; }

}  // namespace ppn::nn
