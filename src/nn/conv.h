#ifndef PPN_NN_CONV_H_
#define PPN_NN_CONV_H_

#include "autograd/ops.h"
#include "nn/module.h"

/// \file
/// Convolution layers used by the correlation information net (paper
/// Table 2): dilated causal convolutions along the time axis (DCONV),
/// correlational convolutions across the asset axis (CCONV), and the
/// time-collapsing valid convolution (Conv4).
///
/// Feature maps are laid out [batch, channels, assets(H), time(W)].

namespace ppn::nn {

/// Generic stride-1 2-D convolution with explicit geometry.
class Conv2dLayer : public Module {
 public:
  /// Creates a layer with Kaiming-uniform weights, zero bias, and the given
  /// lowering geometry (kernel sizes in `geometry` define the weight shape).
  Conv2dLayer(int64_t in_channels, int64_t out_channels,
              const Conv2dGeometry& geometry, Rng* rng);

  /// Applies the convolution to a [N, C_in, H, W] input.
  ag::Var Forward(const ag::Var& input) const;

  const Conv2dGeometry& geometry() const { return geometry_; }
  const ag::Var& weight() const { return weight_; }
  const ag::Var& bias() const { return bias_; }

 private:
  Conv2dGeometry geometry_;
  ag::Var weight_;
  ag::Var bias_;
};

/// Geometry of a *causal* dilated convolution along time (kernel [1 x kw]):
/// all padding goes on the left so output at time t never sees inputs at
/// t' > t, and the time length is preserved.
Conv2dGeometry CausalTimeConvGeometry(int64_t kernel_w, int64_t dilation);

/// Geometry of the correlational convolution (kernel [kh x 1], SAME padding
/// along the asset axis so the asset count is preserved). `kh` is typically
/// the asset count m, letting every asset see every other asset.
Conv2dGeometry CorrelationalConvGeometry(int64_t kernel_h);

/// Geometry of a VALID convolution collapsing the full time axis
/// (kernel [1 x k], no padding): output width 1.
Conv2dGeometry TimeCollapseConvGeometry(int64_t time_length);

/// Geometry of a 1x1 convolution (the decision-making "voting" layer).
Conv2dGeometry PointwiseConvGeometry();

}  // namespace ppn::nn

#endif  // PPN_NN_CONV_H_
