#include "autograd/ops.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace ppn::ag {

namespace {

bool AnyRequiresGrad(const std::vector<Var>& parents) {
  for (const Var& p : parents) {
    PPN_CHECK(p != nullptr);
    if (p->requires_grad()) return true;
  }
  return false;
}

// Builds an op node. If no parent requires gradients — or the thread is
// inside an `InferenceMode` scope — the node is a plain constant and the
// tape edge is dropped (keeps inference graphs flat and lets forward
// intermediates free as soon as their last consumer runs).
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void(Node*)> backward_fn) {
  const bool requires_grad = GradEnabled() && AnyRequiresGrad(parents);
  auto node = std::make_shared<Node>(std::move(value), requires_grad);
  if (requires_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
    if (obs::Enabled()) {
      static thread_local obs::Counter& tape_nodes =
          obs::GetCounter("autograd.tape.nodes");
      tape_nodes.Add(1.0);
    }
  }
  return node;
}

void MaybeAccumulate(const Var& parent, const Tensor& delta) {
  if (parent->requires_grad()) parent->AccumulateGrad(delta);
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return MakeOp(ppn::Add(a->value(), b->value()), {a, b}, [](Node* self) {
    MaybeAccumulate(self->parents[0], self->grad());
    MaybeAccumulate(self->parents[1], self->grad());
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(ppn::Sub(a->value(), b->value()), {a, b}, [](Node* self) {
    MaybeAccumulate(self->parents[0], self->grad());
    MaybeAccumulate(self->parents[1], MulScalar(self->grad(), -1.0f));
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(ppn::Mul(a->value(), b->value()), {a, b}, [](Node* self) {
    const Var& a = self->parents[0];
    const Var& b = self->parents[1];
    MaybeAccumulate(a, ppn::Mul(self->grad(), b->value()));
    MaybeAccumulate(b, ppn::Mul(self->grad(), a->value()));
  });
}

Var Div(const Var& a, const Var& b) {
  return MakeOp(ppn::Div(a->value(), b->value()), {a, b}, [](Node* self) {
    const Var& a = self->parents[0];
    const Var& b = self->parents[1];
    // d(a/b)/da = 1/b ; d(a/b)/db = -a/b^2.
    MaybeAccumulate(a, ppn::Div(self->grad(), b->value()));
    if (b->requires_grad()) {
      Tensor b2 = ppn::Mul(b->value(), b->value());
      Tensor db = ppn::Div(ppn::Mul(self->grad(), a->value()), b2);
      b->AccumulateGrad(MulScalar(db, -1.0f));
    }
  });
}

Var AddScalar(const Var& a, float s) {
  return MakeOp(ppn::AddScalar(a->value(), s), {a}, [](Node* self) {
    MaybeAccumulate(self->parents[0], self->grad());
  });
}

Var MulScalar(const Var& a, float s) {
  return MakeOp(ppn::MulScalar(a->value(), s), {a}, [s](Node* self) {
    MaybeAccumulate(self->parents[0], ppn::MulScalar(self->grad(), s));
  });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

// Activation forwards with an enumerated kernel (Relu/Abs/Clamp) and all
// the fused backward passes route through EltwiseUnary/EltwiseBinary, so
// they pick up the dispatched SIMD tables (tensor/dispatch.h). Each
// enumerated kernel replicates the seed's per-element expression tree
// exactly (see vec/kernels_impl.h), so results are bit-identical to the
// former MapFused/ZipMapFused lambdas on every path. Transcendental
// forwards (exp/log/tanh/sigmoid/sqrt) stay on scalar MapFused: libm has
// no vector form with guaranteed identical bits.

Var Exp(const Var& a) {
  Tensor out = ppn::MapFused(a->value(), [](float x) { return std::exp(x); });
  return MakeOp(std::move(out), {a}, [](Node* self) {
    // d exp(x) = exp(x) dx, and self->value() is exp(x).
    MaybeAccumulate(self->parents[0], ppn::Mul(self->grad(), self->value()));
  });
}

Var Log(const Var& a) {
  Tensor out = ppn::MapFused(a->value(), [](float x) { return std::log(x); });
  return MakeOp(std::move(out), {a}, [](Node* self) {
    MaybeAccumulate(self->parents[0],
                    ppn::Div(self->grad(), self->parents[0]->value()));
  });
}

Var Tanh(const Var& a) {
  Tensor out = ppn::MapFused(a->value(), [](float x) { return std::tanh(x); });
  return MakeOp(std::move(out), {a}, [](Node* self) {
    Tensor dx =
        ppn::EltwiseBinary(vec::BinaryOp::kTanhBwd, self->grad(), self->value());
    MaybeAccumulate(self->parents[0], dx);
  });
}

Var Sigmoid(const Var& a) {
  Tensor out = ppn::MapFused(a->value(), [](float x) {
    return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
  });
  return MakeOp(std::move(out), {a}, [](Node* self) {
    Tensor dx = ppn::EltwiseBinary(vec::BinaryOp::kSigmoidBwd, self->grad(),
                                   self->value());
    MaybeAccumulate(self->parents[0], dx);
  });
}

Var Relu(const Var& a) {
  Tensor out = ppn::EltwiseUnary(vec::UnaryOp::kReluFwd, a->value());
  return MakeOp(std::move(out), {a}, [](Node* self) {
    Tensor dx = ppn::EltwiseBinary(vec::BinaryOp::kReluBwd, self->grad(),
                                   self->parents[0]->value());
    MaybeAccumulate(self->parents[0], dx);
  });
}

Var Abs(const Var& a) {
  Tensor out = ppn::EltwiseUnary(vec::UnaryOp::kAbsFwd, a->value());
  return MakeOp(std::move(out), {a}, [](Node* self) {
    Tensor dx = ppn::EltwiseBinary(vec::BinaryOp::kAbsBwd, self->grad(),
                                   self->parents[0]->value());
    MaybeAccumulate(self->parents[0], dx);
  });
}

Var Sqrt(const Var& a) {
  Tensor out = ppn::MapFused(a->value(), [](float x) { return std::sqrt(x); });
  return MakeOp(std::move(out), {a}, [](Node* self) {
    Tensor dx = ppn::EltwiseBinary(vec::BinaryOp::kSqrtBwd, self->grad(),
                                   self->value());
    MaybeAccumulate(self->parents[0], dx);
  });
}

Var Clamp(const Var& a, float lo, float hi) {
  PPN_CHECK_LE(lo, hi);
  Tensor out = ppn::EltwiseUnary(vec::UnaryOp::kClampFwd, a->value(), lo, hi);
  return MakeOp(std::move(out), {a}, [lo, hi](Node* self) {
    Tensor dx = ppn::EltwiseBinary(vec::BinaryOp::kClampBwd, self->grad(),
                                   self->parents[0]->value(), lo, hi);
    MaybeAccumulate(self->parents[0], dx);
  });
}

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(ppn::MatMul(a->value(), b->value()), {a, b}, [](Node* self) {
    const Var& a = self->parents[0];
    const Var& b = self->parents[1];
    // dA = dY B^T ; dB = A^T dY.
    if (a->requires_grad()) {
      a->AccumulateGrad(ppn::MatMulTransB(self->grad(), b->value()));
    }
    if (b->requires_grad()) {
      b->AccumulateGrad(ppn::MatMulTransA(a->value(), self->grad()));
    }
  });
}

Var Transpose2D(const Var& a) {
  return MakeOp(ppn::Transpose2D(a->value()), {a}, [](Node* self) {
    MaybeAccumulate(self->parents[0], ppn::Transpose2D(self->grad()));
  });
}

Var AddRowVector(const Var& a, const Var& b) {
  return MakeOp(ppn::AddRowVector(a->value(), b->value()), {a, b},
                [](Node* self) {
                  MaybeAccumulate(self->parents[0], self->grad());
                  MaybeAccumulate(self->parents[1], ppn::SumRows(self->grad()));
                });
}

Var SumAll(const Var& a) {
  Tensor out({1});
  out.MutableData()[0] = static_cast<float>(ppn::SumAll(a->value()));
  return MakeOp(std::move(out), {a}, [](Node* self) {
    const float g = self->grad()[0];
    MaybeAccumulate(self->parents[0],
                    Tensor::Full(self->parents[0]->shape(), g));
  });
}

Var MeanAll(const Var& a) {
  PPN_CHECK_GT(a->numel(), 0);
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a->numel()));
}

Var BroadcastScalar(const Var& scalar, std::vector<int64_t> shape) {
  PPN_CHECK_EQ(scalar->numel(), 1);
  Tensor out = Tensor::Full(shape, scalar->value()[0]);
  return MakeOp(std::move(out), {scalar}, [](Node* self) {
    Tensor g({1});
    g.MutableData()[0] = static_cast<float>(ppn::SumAll(self->grad()));
    MaybeAccumulate(self->parents[0], g);
  });
}

Var VarianceAll(const Var& a) {
  Var mean = MeanAll(a);
  Var centered = Sub(a, BroadcastScalar(mean, a->shape()));
  return MeanAll(Mul(centered, centered));
}

Var Reshape(const Var& a, std::vector<int64_t> shape) {
  // Reshaped() shares the buffer, which is safe here because ops never
  // mutate their inputs; the node still materializes distinct grad storage.
  Tensor out = a->value().Reshaped(shape);
  return MakeOp(std::move(out), {a}, [](Node* self) {
    MaybeAccumulate(self->parents[0],
                    self->grad().Reshaped(self->parents[0]->shape()));
  });
}

Var ConcatVars(const std::vector<Var>& parts, int axis) {
  PPN_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Var& p : parts) values.push_back(p->value());
  Tensor out = ppn::Concat(values, axis);
  const int ndim = parts[0]->value().ndim();
  const int norm_axis = axis < 0 ? axis + ndim : axis;
  return MakeOp(std::move(out), parts, [norm_axis](Node* self) {
    int64_t offset = 0;
    for (const Var& parent : self->parents) {
      const int64_t length = parent->shape()[norm_axis];
      MaybeAccumulate(parent,
                      ppn::Narrow(self->grad(), norm_axis, offset, length));
      offset += length;
    }
  });
}

Var NarrowVar(const Var& a, int axis, int64_t start, int64_t length) {
  Tensor out = ppn::Narrow(a->value(), axis, start, length);
  const int ndim = a->value().ndim();
  const int norm_axis = axis < 0 ? axis + ndim : axis;
  return MakeOp(std::move(out), {a}, [norm_axis, start](Node* self) {
    const Var& parent = self->parents[0];
    if (!parent->requires_grad()) return;
    Tensor padded(parent->shape());
    ppn::NarrowInto(&padded, self->grad(), norm_axis, start);
    parent->AccumulateGrad(padded);
  });
}

Var SoftmaxRows(const Var& a) {
  PPN_CHECK_EQ(a->value().ndim(), 2);
  const int64_t m = a->value().dim(0);
  const int64_t n = a->value().dim(1);
  Tensor out = Tensor::Uninitialized(a->shape());
  const float* pa = a->value().Data();
  float* po = out.MutableData();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pa + i * n;
    float* out_row = po + i * n;
    float max_value = row[0];
    for (int64_t j = 1; j < n; ++j) max_value = std::max(max_value, row[j]);
    float total = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      out_row[j] = std::exp(row[j] - max_value);
      total += out_row[j];
    }
    for (int64_t j = 0; j < n; ++j) out_row[j] /= total;
  }
  return MakeOp(std::move(out), {a}, [m, n](Node* self) {
    const Var& parent = self->parents[0];
    if (!parent->requires_grad()) return;
    // dx_j = y_j * (dy_j - sum_k dy_k y_k), per row.
    Tensor dx = Tensor::Uninitialized(parent->shape());
    const float* y = self->value().Data();
    const float* dy = self->grad().Data();
    float* px = dx.MutableData();
    for (int64_t i = 0; i < m; ++i) {
      const float* y_row = y + i * n;
      const float* dy_row = dy + i * n;
      float inner = 0.0f;
      for (int64_t j = 0; j < n; ++j) inner += dy_row[j] * y_row[j];
      float* dx_row = px + i * n;
      for (int64_t j = 0; j < n; ++j) {
        dx_row[j] = y_row[j] * (dy_row[j] - inner);
      }
    }
    parent->AccumulateGrad(dx);
  });
}

namespace {

// Raw kernel: permutes 4-D tensor axes.
Tensor PermuteTensor4(const Tensor& a, const std::array<int, 4>& axes) {
  PPN_CHECK_EQ(a.ndim(), 4);
  bool seen[4] = {false, false, false, false};
  for (const int axis : axes) {
    PPN_CHECK(axis >= 0 && axis < 4);
    PPN_CHECK(!seen[axis]) << "duplicate axis in permutation";
    seen[axis] = true;
  }
  const auto& in_shape = a.shape();
  std::vector<int64_t> out_shape(4);
  for (int i = 0; i < 4; ++i) out_shape[i] = in_shape[axes[i]];
  Tensor out = Tensor::Uninitialized(out_shape);
  // Input strides.
  int64_t in_strides[4];
  in_strides[3] = 1;
  for (int i = 2; i >= 0; --i) in_strides[i] = in_strides[i + 1] * in_shape[i + 1];
  const float* pa = a.Data();
  float* po = out.MutableData();
  int64_t out_index = 0;
  for (int64_t i0 = 0; i0 < out_shape[0]; ++i0) {
    for (int64_t i1 = 0; i1 < out_shape[1]; ++i1) {
      for (int64_t i2 = 0; i2 < out_shape[2]; ++i2) {
        for (int64_t i3 = 0; i3 < out_shape[3]; ++i3) {
          const int64_t out_coord[4] = {i0, i1, i2, i3};
          int64_t in_index = 0;
          for (int d = 0; d < 4; ++d) {
            in_index += out_coord[d] * in_strides[axes[d]];
          }
          po[out_index++] = pa[in_index];
        }
      }
    }
  }
  return out;
}

}  // namespace

Var Permute4(const Var& a, const std::array<int, 4>& axes) {
  Tensor out = PermuteTensor4(a->value(), axes);
  // Inverse permutation for the backward pass.
  std::array<int, 4> inverse{};
  for (int i = 0; i < 4; ++i) inverse[axes[i]] = i;
  return MakeOp(std::move(out), {a}, [inverse](Node* self) {
    MaybeAccumulate(self->parents[0], PermuteTensor4(self->grad(), inverse));
  });
}

Var Dropout(const Var& a, float p, bool training, Rng* rng) {
  PPN_CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return a;
  PPN_CHECK(rng != nullptr);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask = Tensor::Uninitialized(a->shape());
  float* pm = mask.MutableData();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    pm[i] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  Tensor out = ppn::Mul(a->value(), mask);
  return MakeOp(std::move(out), {a}, [mask](Node* self) {
    MaybeAccumulate(self->parents[0], ppn::Mul(self->grad(), mask));
  });
}

Var Conv2d(const Var& input, const Var& weight, const Var& bias,
           const Conv2dGeometry& geometry) {
  PPN_CHECK_EQ(input->value().ndim(), 4);
  PPN_CHECK_EQ(weight->value().ndim(), 4);
  const int64_t batch = input->value().dim(0);
  const int64_t c_in = input->value().dim(1);
  const int64_t h = input->value().dim(2);
  const int64_t w = input->value().dim(3);
  const int64_t c_out = weight->value().dim(0);
  PPN_CHECK_EQ(weight->value().dim(1), c_in);
  PPN_CHECK_EQ(weight->value().dim(2), geometry.kernel_h);
  PPN_CHECK_EQ(weight->value().dim(3), geometry.kernel_w);
  const int64_t out_h = geometry.OutH(h);
  const int64_t out_w = geometry.OutW(w);
  const int64_t patch = c_in * geometry.kernel_h * geometry.kernel_w;
  if (obs::Enabled()) {
    static thread_local obs::Counter& calls =
        obs::GetCounter("nn.conv2d.calls");
    static thread_local obs::Counter& flops =
        obs::GetCounter("nn.conv2d.flops");
    calls.Add(1.0);
    flops.Add(2.0 * static_cast<double>(batch * out_h * out_w) *
              static_cast<double>(patch) * static_cast<double>(c_out));
  }
  obs::Span span("nn.conv2d.forward", /*min_duration_us=*/20.0);
  span.AddArg("batch", static_cast<double>(batch));
  span.AddArg("c_out", static_cast<double>(c_out));

  Tensor columns = Im2Col(input->value(), geometry);  // [B*OH*OW, patch]
  Tensor weight_matrix = weight->value().Reshaped({c_out, patch});
  Tensor out_matrix = ppn::MatMulTransB(columns, weight_matrix);
  if (bias != nullptr) {
    PPN_CHECK_EQ(bias->value().ndim(), 1);
    PPN_CHECK_EQ(bias->value().dim(0), c_out);
    out_matrix = ppn::AddRowVector(out_matrix, bias->value());
  }
  // Rearrange [B*OH*OW, C_out] -> [B, C_out, OH, OW].
  Tensor out = Tensor::Uninitialized({batch, c_out, out_h, out_w});
  {
    const float* pm = out_matrix.Data();
    float* po = out.MutableData();
    // Pure permutation, disjoint per image: safe and bit-identical.
#ifdef _OPENMP
#pragma omp parallel for \
    if (InnerParallelEnabled() && batch * c_out * out_h * out_w > 65536) \
    schedule(static)
#endif
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          const float* row = pm + ((b * out_h + oy) * out_w + ox) * c_out;
          for (int64_t co = 0; co < c_out; ++co) {
            po[((b * c_out + co) * out_h + oy) * out_w + ox] = row[co];
          }
        }
      }
    }
  }

  std::vector<Var> parents = {input, weight};
  if (bias != nullptr) parents.push_back(bias);
  const std::vector<int64_t> input_shape = input->value().shape();
  const bool has_bias = bias != nullptr;
  return MakeOp(
      std::move(out), std::move(parents),
      [columns, geometry, input_shape, batch, c_out, out_h, out_w, patch,
       has_bias](Node* self) {
        const Var& input = self->parents[0];
        const Var& weight = self->parents[1];
        // Inverse rearrangement: grad [B, C_out, OH, OW] -> [B*OH*OW, C_out].
        Tensor grad_matrix =
            Tensor::Uninitialized({batch * out_h * out_w, c_out});
        {
          const float* pg = self->grad().Data();
          float* pm = grad_matrix.MutableData();
          // Pure permutation, disjoint per image: safe and bit-identical.
#ifdef _OPENMP
#pragma omp parallel for \
    if (InnerParallelEnabled() && batch * c_out * out_h * out_w > 65536) \
    schedule(static)
#endif
          for (int64_t b = 0; b < batch; ++b) {
            for (int64_t co = 0; co < c_out; ++co) {
              for (int64_t oy = 0; oy < out_h; ++oy) {
                for (int64_t ox = 0; ox < out_w; ++ox) {
                  pm[((b * out_h + oy) * out_w + ox) * c_out + co] =
                      pg[((b * c_out + co) * out_h + oy) * out_w + ox];
                }
              }
            }
          }
        }
        if (input->requires_grad()) {
          Tensor weight_matrix = weight->value().Reshaped({c_out, patch});
          Tensor grad_columns = ppn::MatMul(grad_matrix, weight_matrix);
          input->AccumulateGrad(
              Col2Im(grad_columns, input_shape, geometry));
        }
        if (weight->requires_grad()) {
          Tensor grad_weight = ppn::MatMulTransA(grad_matrix, columns);
          weight->AccumulateGrad(grad_weight.Reshaped(weight->shape()));
        }
        if (has_bias) {
          const Var& bias = self->parents[2];
          MaybeAccumulate(bias, ppn::SumRows(grad_matrix));
        }
      });
}

}  // namespace ppn::ag
