#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppn::ag {

namespace {

double EvalAt(const ScalarGraphFn& fn, const std::vector<Tensor>& inputs) {
  std::vector<Var> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(Constant(t.Clone()));
  const Var out = fn(leaves);
  return ScalarValue(out);
}

}  // namespace

GradCheckResult CheckGradients(const ScalarGraphFn& fn,
                               const std::vector<Tensor>& inputs, float eps) {
  PPN_CHECK(!inputs.empty());
  // Analytic pass.
  std::vector<Var> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(Parameter(t.Clone()));
  const Var out = fn(leaves);
  Backward(out);

  GradCheckResult result;
  for (size_t input_index = 0; input_index < inputs.size(); ++input_index) {
    const Tensor& base = inputs[input_index];
    const Var& leaf = leaves[input_index];
    for (int64_t i = 0; i < base.numel(); ++i) {
      std::vector<Tensor> perturbed;
      perturbed.reserve(inputs.size());
      for (const Tensor& t : inputs) perturbed.push_back(t.Clone());
      perturbed[input_index].MutableData()[i] = base[i] + eps;
      const double f_plus = EvalAt(fn, perturbed);
      perturbed[input_index].MutableData()[i] = base[i] - eps;
      const double f_minus = EvalAt(fn, perturbed);
      const double numeric = (f_plus - f_minus) / (2.0 * eps);
      const double analytic =
          leaf->has_grad() ? static_cast<double>(leaf->grad()[i]) : 0.0;
      const double abs_error = std::fabs(analytic - numeric);
      const double denom =
          std::max(1e-3, std::fabs(analytic) + std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_error);
      result.max_rel_error = std::max(result.max_rel_error, abs_error / denom);
    }
  }
  return result;
}

}  // namespace ppn::ag
