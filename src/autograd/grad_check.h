#ifndef PPN_AUTOGRAD_GRAD_CHECK_H_
#define PPN_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

/// \file
/// Numerical gradient verification used by the test suite: compares the
/// analytic gradients produced by `Backward` against central finite
/// differences for an arbitrary scalar-valued graph function.

namespace ppn::ag {

/// A scalar-valued differentiable function of several tensor inputs. The
/// function must be deterministic (re-running it on the same inputs must
/// produce the same scalar).
using ScalarGraphFn = std::function<Var(const std::vector<Var>&)>;

/// Result of a gradient check.
struct GradCheckResult {
  /// Largest |analytic - numeric| over all input elements.
  double max_abs_error = 0.0;
  /// Largest relative error max(|a-n| / max(1e-3, |a|+|n|)).
  double max_rel_error = 0.0;
};

/// Runs `fn` on `Parameter` leaves built from `inputs`, backpropagates, and
/// compares each element's analytic gradient with the central finite
/// difference (f(x+eps) - f(x-eps)) / (2 eps).
GradCheckResult CheckGradients(const ScalarGraphFn& fn,
                               const std::vector<Tensor>& inputs,
                               float eps = 1e-2f);

}  // namespace ppn::ag

#endif  // PPN_AUTOGRAD_GRAD_CHECK_H_
