#ifndef PPN_AUTOGRAD_VARIABLE_H_
#define PPN_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

/// \file
/// Dynamic-graph reverse-mode automatic differentiation. Each differentiable
/// operation in `autograd/ops.h` allocates a `Node` holding its output value,
/// links to its parent nodes, and registers a closure that propagates the
/// output gradient to the parents. `Backward()` runs the closures in reverse
/// topological order.

namespace ppn::ag {

class Node;

/// Handle to a graph node. Graphs are kept alive by these shared handles;
/// when the last handle to a subgraph result is dropped, the whole
/// intermediate graph is freed.
using Var = std::shared_ptr<Node>;

/// One vertex of the autodiff tape.
class Node {
 public:
  /// Builds a node holding `value`. Prefer the `Constant` / `Parameter` /
  /// op factory functions over calling this directly.
  Node(Tensor value, bool requires_grad);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Forward value.
  const Tensor& value() const { return value_; }

  /// Mutable forward value (used by optimizers updating parameters
  /// in place).
  Tensor* mutable_value() { return &value_; }

  /// Whether gradients flow into this node.
  bool requires_grad() const { return requires_grad_; }

  /// Accumulated gradient; zero tensor until `Backward` reaches this node.
  /// Only meaningful if `requires_grad()`.
  const Tensor& grad() const { return grad_; }

  /// Adds `delta` into the gradient accumulator (allocates on first use).
  void AccumulateGrad(const Tensor& delta);

  /// True once any gradient has been accumulated (or ZeroGrad called).
  bool has_grad() const { return grad_allocated_; }

  /// Clears the gradient accumulator to zero.
  void ZeroGrad();

  /// Shape convenience forwarding.
  const std::vector<int64_t>& shape() const { return value_.shape(); }

  /// Element count convenience forwarding.
  int64_t numel() const { return value_.numel(); }

  // --- internal wiring used by op factories ---------------------------

  /// Parents in the dataflow graph (op inputs).
  std::vector<Var> parents;

  /// Propagates this node's `grad()` into the parents' accumulators.
  /// Null for leaves.
  std::function<void(Node*)> backward_fn;

 private:
  Tensor value_;
  Tensor grad_;
  bool grad_allocated_ = false;
  bool requires_grad_;
};

/// True when op factories record tape edges on this thread (the default).
/// Cleared inside an `InferenceMode` scope.
bool GradEnabled();

/// RAII guard disabling tape recording on the current thread: every op
/// built inside the scope produces a plain constant node — no parent
/// links, no backward closure, no gradient buffers — even when its inputs
/// are trainable parameters. Forward VALUES are bit-identical to the
/// recording mode; only the bookkeeping disappears, so intermediates free
/// eagerly and serving forwards run tape-free (cf. PyTorch's
/// `AutoGradMode(false)`). Nesting and re-entry are safe: each guard
/// restores the mode it found. Calling `Backward` on a graph built under
/// the guard is a no-op for gradients: the root is a constant with no
/// parent links, so nothing propagates and no parameter receives a grad.
class InferenceMode {
 public:
  InferenceMode();
  ~InferenceMode();

  InferenceMode(const InferenceMode&) = delete;
  InferenceMode& operator=(const InferenceMode&) = delete;

 private:
  bool previous_;
};

/// Creates a leaf that does not require gradients (inputs, stop-gradients).
Var Constant(Tensor value);

/// Creates a trainable leaf (network parameter).
Var Parameter(Tensor value);

/// Returns a gradient-stopped copy of `v` (shares the value buffer).
Var Detach(const Var& v);

/// Runs reverse-mode accumulation from `root`, which must be a scalar
/// (numel() == 1); the seed gradient is 1. Gradients accumulate into every
/// reachable node with `requires_grad()`. Intermediate gradients are kept
/// (useful for testing); call `ZeroGrad` on leaves between steps.
void Backward(const Var& root);

/// Value of a scalar node. Checks numel() == 1.
float ScalarValue(const Var& v);

}  // namespace ppn::ag

#endif  // PPN_AUTOGRAD_VARIABLE_H_
