#include "autograd/variable.h"

#include <unordered_set>

#include "common/check.h"
#include "tensor/ops.h"

namespace ppn::ag {

Node::Node(Tensor value, bool requires_grad)
    : value_(std::move(value)), requires_grad_(requires_grad) {}

void Node::AccumulateGrad(const Tensor& delta) {
  PPN_CHECK(SameShape(delta, value_))
      << "gradient shape " << ShapeToString(delta.shape())
      << " does not match value shape " << ShapeToString(value_.shape());
  if (!grad_allocated_) {
    grad_ = delta.Clone();
    grad_allocated_ = true;
    return;
  }
  float* pg = grad_.MutableData();
  const float* pd = delta.Data();
  for (int64_t i = 0; i < grad_.numel(); ++i) pg[i] += pd[i];
}

void Node::ZeroGrad() {
  if (grad_allocated_) {
    grad_.Fill(0.0f);
  } else {
    grad_ = Tensor(value_.shape());
    grad_allocated_ = true;
  }
}

namespace {

// Thread-local so a serving thread in InferenceMode never interferes with
// a training thread recording tape on the same process.
thread_local bool tls_grad_enabled = true;

}  // namespace

bool GradEnabled() { return tls_grad_enabled; }

InferenceMode::InferenceMode() : previous_(tls_grad_enabled) {
  tls_grad_enabled = false;
}

InferenceMode::~InferenceMode() { tls_grad_enabled = previous_; }

Var Constant(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

Var Parameter(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

Var Detach(const Var& v) {
  PPN_CHECK(v != nullptr);
  return Constant(v->value());
}

namespace {

// Iterative post-order DFS producing a reverse topological order.
void TopologicalOrder(Node* root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child != nullptr && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& root) {
  PPN_CHECK(root != nullptr);
  PPN_CHECK_EQ(root->numel(), 1) << "Backward requires a scalar root";
  std::vector<Node*> order;
  TopologicalOrder(root.get(), &order);
  root->AccumulateGrad(Tensor::Full(root->shape(), 1.0f));
  // `order` is post-order (children first); walk it backwards so each node's
  // gradient is complete before being propagated to its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad() && node->has_grad()) {
      node->backward_fn(node);
    }
  }
}

float ScalarValue(const Var& v) {
  PPN_CHECK(v != nullptr);
  PPN_CHECK_EQ(v->numel(), 1);
  return v->value()[0];
}

}  // namespace ppn::ag
