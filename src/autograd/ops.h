#ifndef PPN_AUTOGRAD_OPS_H_
#define PPN_AUTOGRAD_OPS_H_

#include <array>
#include <vector>

#include "autograd/variable.h"
#include "common/random.h"
#include "tensor/ops.h"

/// \file
/// Differentiable operations. Each returns a new graph node; gradients flow
/// to any parent created by `Parameter` (or any op depending on one).
/// Binary elementwise ops require identical shapes except where noted.

namespace ppn::ag {

/// Elementwise a + b.
Var Add(const Var& a, const Var& b);
/// Elementwise a - b.
Var Sub(const Var& a, const Var& b);
/// Elementwise a * b.
Var Mul(const Var& a, const Var& b);
/// Elementwise a / b.
Var Div(const Var& a, const Var& b);
/// a + s.
Var AddScalar(const Var& a, float s);
/// a * s.
Var MulScalar(const Var& a, float s);
/// -a.
Var Neg(const Var& a);

/// Elementwise exp.
Var Exp(const Var& a);
/// Elementwise natural log (caller guarantees positivity; combine with
/// `Clamp` for numerical safety).
Var Log(const Var& a);
/// Elementwise tanh.
Var Tanh(const Var& a);
/// Elementwise logistic sigmoid.
Var Sigmoid(const Var& a);
/// Elementwise max(x, 0).
Var Relu(const Var& a);
/// Elementwise |x| (subgradient 0 at x == 0).
Var Abs(const Var& a);
/// Elementwise square root.
Var Sqrt(const Var& a);
/// Elementwise clamp into [lo, hi]; gradient passes through strictly
/// inside the interval and is zero where the clamp is active.
Var Clamp(const Var& a, float lo, float hi);

/// Matrix product [m,k] x [k,n] -> [m,n].
Var MatMul(const Var& a, const Var& b);
/// 2-D transpose.
Var Transpose2D(const Var& a);
/// Adds row vector b [n] to each row of a [m,n].
Var AddRowVector(const Var& a, const Var& b);

/// Sum of all elements -> scalar (shape {1}).
Var SumAll(const Var& a);
/// Mean of all elements -> scalar (shape {1}).
Var MeanAll(const Var& a);
/// Broadcast of a scalar (shape {1}) to `shape`.
Var BroadcastScalar(const Var& scalar, std::vector<int64_t> shape);
/// Population variance of all elements -> scalar. Composite op.
Var VarianceAll(const Var& a);

/// Reshape (same element count). Gradient reshapes back.
Var Reshape(const Var& a, std::vector<int64_t> shape);
/// Concatenation along `axis`.
Var ConcatVars(const std::vector<Var>& parts, int axis);
/// Slice of length `length` at `start` along `axis`.
Var NarrowVar(const Var& a, int axis, int64_t start, int64_t length);

/// Row-wise softmax of a 2-D tensor [m,n].
Var SoftmaxRows(const Var& a);

/// Permutation of the axes of a 4-D tensor: output axis i is input axis
/// `axes[i]` (like numpy.transpose). Gradient applies the inverse
/// permutation.
Var Permute4(const Var& a, const std::array<int, 4>& axes);

/// Inverted-dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by 1/(1-p); identity when
/// `training` is false. Requires 0 <= p < 1.
Var Dropout(const Var& a, float p, bool training, Rng* rng);

/// 2-D convolution, stride 1: input [N, C_in, H, W], weight
/// [C_out, C_in, kh, kw], optional bias [C_out] (pass nullptr to skip),
/// geometry describing dilation and asymmetric zero padding.
/// Output [N, C_out, OutH, OutW].
Var Conv2d(const Var& input, const Var& weight, const Var& bias,
           const Conv2dGeometry& geometry);

}  // namespace ppn::ag

#endif  // PPN_AUTOGRAD_OPS_H_
